(** Functional interpreter for mini-PTX programs.

    Executes a kernel over real arrays with CUDA grid/block semantics:
    blocks are independent; within a block, every thread runs until the
    next barrier (or return), then the next barrier phase starts. This is
    exact for data-race-free kernels — every kernel our generators emit
    separates shared-memory writers from readers with [Bar] — and it
    supports thread-divergent control flow between barriers (needed by the
    branch-based bounds-checking mode of §8.3).

    The interpreter doubles as the reproduction's "hardware counter"
    source: it accumulates the dynamic instruction mix per category,
    warp-level global/shared memory transactions, barrier waits and
    predicated-off issue slots, returned per-run and exported to the
    {!Obs} trace (as [interp.*] counters) when [ISAAC_TRACE] is set.
    Tests cross-check the instruction mix against the static cost
    profiles the timing model consumes; DESIGN.md ("Observability")
    documents how each counter maps onto the cost terms of the paper's
    Eq. 2–3. *)

type counters = {
  mutable ialu : int;
  mutable fma : int;
  mutable fp_other : int;
  mutable ld_global : int;
  mutable st_global : int;
  mutable ld_shared : int;
  mutable st_shared : int;
  mutable atom : int;
  mutable bar : int;        (** barrier waits (executions, per thread) *)
  mutable branch : int;
  mutable pred : int;       (** setp/predicate logic ops *)
  mutable mov : int;
  mutable predicated_off : int;
      (** instructions whose guard evaluated false (issued but masked) *)
  mutable gld_transactions : int;
      (** warp-level global-load transactions: one per distinct 32-word
          segment touched by an access group (the lanes of one warp
          executing one memory instruction once). Fully coalesced warp
          loads cost 1; a stride-32 gather costs up to 32. *)
  mutable gst_transactions : int;
      (** warp-level global-store transactions, same grouping *)
  mutable shared_transactions : int;
      (** serialized shared-memory passes: per access group, the maximum
          over the 32 banks of the distinct-address count — 1 when
          conflict-free, up to 32 under a worst-case bank conflict;
          equal addresses broadcast, as on real hardware. Transaction
          grouping reconstructs warp lockstep from each lane's dynamic
          execution ordinal per pc; this is exact for warp-uniform trip
          counts (all generated kernels) and approximate under
          intra-warp loop divergence. *)
}

val zero_counters : unit -> counters

val total : counters -> int
(** Total dynamically issued instructions (including masked ones, which
    GPUs still issue — predication does not skip issue slots). Memory
    transactions are derived traffic, not issue slots, and are excluded. *)

val summary : counters -> string
(** One-line [key=value] rendering of every counter (the snapshot format
    embedded in {!Trap} messages). *)

exception Trap of string
(** Raised on runtime errors: out-of-bounds memory access, barrier
    divergence, instruction budget exhaustion, unknown parameter.
    Messages for faults inside the body locate the instruction as
    ["pc N (label L + k)"] using the nearest preceding label, and every
    fault raised during execution appends the accumulated counter
    snapshot as ["[dyn: total=… ialu=… …]"] (see {!summary}) so
    divergent or runaway kernels can be diagnosed post mortem. *)

val run :
  ?max_dynamic:int ->
  ?domains:int ->
  ?engine:[ `Bytecode | `Closures ] ->
  Program.t ->
  grid:int * int * int ->
  block:int * int * int ->
  bufs:(string * float array) list ->
  iargs:(string * int) list ->
  counters
(** [run p ~grid ~block ~bufs ~iargs] executes the kernel, mutating the
    arrays bound to the program's buffer parameters. [bufs] must bind every
    buffer parameter by name, [iargs] every scalar parameter.
    [max_dynamic] bounds the total dynamic instruction count (default
    200 million) to catch generator bugs that would loop forever.

    Two engines share identical semantics; [engine] selects one
    (default [`Bytecode]):

    - [`Bytecode] lowers the body once per launch into one flat packed
      [int] array (shape-specialized opcodes, branch targets as absolute
      word offsets, operands collapsed to register-or-constant, float
      immediates pooled) and runs a dense jump-table dispatch loop with
      the register files hoisted into locals — the serving hot path.
    - [`Closures] compiles one closure per instruction (threaded code) —
      kept as a structurally independent differential reference.

    The differential suite holds both engines (and the naive
    {!Interp_ref}) to bit-identical output buffers, counters and trap
    messages.

    Either way the grid loop fans blocks out across [domains] OCaml
    domains (default {!Util.Parallel.recommended_domains}, so
    [ISAAC_DOMAINS] applies). Per-domain counter shards are summed
    deterministically, so counters, output buffers and [Obs] exports are
    bit-identical for every domain count — kernels using
    [Atom_global_add] automatically fall back to a single domain to keep
    the floating-point accumulation order (and thus the buffers) exact.
    Trap messages from a parallel run carry the faulting domain's counter
    shard rather than the global totals. *)

val run_bytecode :
  ?max_dynamic:int ->
  ?domains:int ->
  Program.t ->
  grid:int * int * int ->
  block:int * int * int ->
  bufs:(string * float array) list ->
  iargs:(string * int) list ->
  counters
(** {!run} with the flat-bytecode engine, directly. *)

val run_closures :
  ?max_dynamic:int ->
  ?domains:int ->
  Program.t ->
  grid:int * int * int ->
  block:int * int * int ->
  bufs:(string * float array) list ->
  iargs:(string * int) list ->
  counters
(** {!run} with the closure-threaded engine, directly. *)
