(** Functional interpreter for mini-PTX programs.

    Executes a kernel over real arrays with CUDA grid/block semantics:
    blocks are independent; within a block, every thread runs until the
    next barrier (or return), then the next barrier phase starts. This is
    exact for data-race-free kernels — every kernel our generators emit
    separates shared-memory writers from readers with [Bar] — and it
    supports thread-divergent control flow between barriers (needed by the
    branch-based bounds-checking mode of §8.3).

    The interpreter also counts dynamically executed instructions per
    category; tests cross-check these counts against the static cost
    profiles the timing model consumes. *)

type counters = {
  mutable ialu : int;
  mutable fma : int;
  mutable fp_other : int;
  mutable ld_global : int;
  mutable st_global : int;
  mutable ld_shared : int;
  mutable st_shared : int;
  mutable atom : int;
  mutable bar : int;        (** barrier executions, per thread *)
  mutable branch : int;
  mutable pred : int;       (** setp/predicate logic ops *)
  mutable mov : int;
  mutable predicated_off : int;
      (** instructions whose guard evaluated false (issued but masked) *)
}

val zero_counters : unit -> counters
val total : counters -> int
(** Total dynamically issued instructions (including masked ones, which
    GPUs still issue — predication does not skip issue slots). *)

exception Trap of string
(** Raised on runtime errors: out-of-bounds memory access, barrier
    divergence, instruction budget exhaustion, unknown parameter.
    Messages for faults inside the body locate the instruction as
    ["pc N (label L + k)"] using the nearest preceding label. *)

val run :
  ?max_dynamic:int ->
  Program.t ->
  grid:int * int * int ->
  block:int * int * int ->
  bufs:(string * float array) list ->
  iargs:(string * int) list ->
  counters
(** [run p ~grid ~block ~bufs ~iargs] executes the kernel, mutating the
    arrays bound to the program's buffer parameters. [bufs] must bind every
    buffer parameter by name, [iargs] every scalar parameter.
    [max_dynamic] bounds the total dynamic instruction count (default
    200 million) to catch generator bugs that would loop forever. *)
