(* The original decode-per-step interpreter, retained verbatim as the
   executable specification for the threaded-code engine in {!Interp}.
   Every observable — output buffers, all sixteen counters, trap
   messages — must match between the two; test/test_interp_diff.ml
   enforces this differentially. Keep this file boring: bug fixes that
   change semantics must land in both engines deliberately. *)

open Types

type counters = Interp.counters = {
  mutable ialu : int;
  mutable fma : int;
  mutable fp_other : int;
  mutable ld_global : int;
  mutable st_global : int;
  mutable ld_shared : int;
  mutable st_shared : int;
  mutable atom : int;
  mutable bar : int;
  mutable branch : int;
  mutable pred : int;
  mutable mov : int;
  mutable predicated_off : int;
  mutable gld_transactions : int;
  mutable gst_transactions : int;
  mutable shared_transactions : int;
}

let zero_counters = Interp.zero_counters
let summary = Interp.summary

let trap fmt = Printf.ksprintf (fun s -> raise (Interp.Trap s)) fmt

(* Describe a pc as "pc N (k after label L)" so trap messages locate the
   faulting instruction in generator output without a disassembly. *)
let describe_pc (body : Instr.t array) pc =
  let rec nearest i =
    if i < 0 then None
    else
      match body.(i) with
      | { Instr.op = Instr.Label l; _ } -> Some (l, i)
      | _ -> nearest (i - 1)
  in
  match nearest (min pc (Array.length body - 1)) with
  | Some (l, lpc) when pc = lpc -> Printf.sprintf "pc %d (label %s)" pc l
  | Some (l, lpc) -> Printf.sprintf "pc %d (label %s + %d)" pc l (pc - lpc)
  | None -> Printf.sprintf "pc %d" pc

(* Per-thread architectural state. *)
type thread = {
  fregs : float array;
  iregs : int array;
  pregs : bool array;
  mutable pc : int;
  mutable done_ : bool;
  lin : int;  (* linear thread index within the block (lane = lin mod 32) *)
  tid : int * int * int;
  ctaid : int * int * int;
}

type stop = Hit_bar | Hit_ret

(* One shared-memory access group of the dynamic bank-conflict replay:
   the accesses issued by the lanes of one warp for one dynamic
   execution of one instruction. *)
type sgroup = {
  mutable s_addrs : int list;        (* distinct addresses seen *)
  mutable s_banks : (int * int) list; (* bank -> distinct-address count *)
  mutable s_passes : int;            (* serialized passes charged so far *)
}

let run ?(max_dynamic = 200_000_000) (p : Program.t) ~grid ~block ~bufs ~iargs =
  let gx, gy, gz = grid and bx, by, bz = block in
  if gx <= 0 || gy <= 0 || gz <= 0 || bx <= 0 || by <= 0 || bz <= 0 then
    trap "invalid launch geometry";
  let buffers =
    Array.map
      (fun name ->
        match List.assoc_opt name bufs with
        | Some a -> a
        | None -> trap "missing buffer argument %s" name)
      p.buf_params
  in
  let ints =
    Array.map
      (fun name ->
        match List.assoc_opt name iargs with
        | Some v -> v
        | None -> trap "missing int argument %s" name)
      p.int_params
  in
  let labels = Program.find_labels p in
  let body = p.body in
  let n_body = Array.length body in
  let counters = zero_counters () in
  (* Every trap raised during execution carries the counter totals
     accumulated up to the fault — the "hardware counter" snapshot that
     makes divergent or runaway kernels diagnosable post mortem. *)
  let trap_at pc fmt =
    Printf.ksprintf
      (fun s ->
        raise
          (Interp.Trap
             (Printf.sprintf "%s at %s [%s]" s (describe_pc body pc)
                (summary counters))))
      fmt
  in
  let trap_run fmt =
    Printf.ksprintf
      (fun s ->
        raise (Interp.Trap (Printf.sprintf "%s [%s]" s (summary counters))))
      fmt
  in
  let budget = ref max_dynamic in
  let charge () =
    decr budget;
    if !budget <= 0 then trap_run "dynamic instruction budget exhausted"
  in
  let is_half = p.dtype = F16 in
  let store_round v = if is_half then round_half v else v in
  (* One block's shared memory, reallocated per block. *)
  let run_block cx cy cz =
    let shared = Array.make (max 1 p.shared_words) 0.0 in
    let shared_i = Array.make (max 1 p.shared_int_words) 0 in
    let n_threads = bx * by * bz in
    let threads =
      Array.init n_threads (fun linear ->
        let tx = linear mod bx in
        let ty = linear / bx mod by in
        let tz = linear / (bx * by) in
        { fregs = Array.make (max 1 p.n_fregs) 0.0;
          iregs = Array.make (max 1 p.n_iregs) 0;
          pregs = Array.make (max 1 p.n_pregs) false;
          pc = 0; done_ = false;
          lin = linear;
          tid = (tx, ty, tz);
          ctaid = (cx, cy, cz) })
    in
    (* --- memory-transaction replay --------------------------------------
       Threads execute sequentially (thread 0 runs to the barrier before
       thread 1 starts), so warp-level coalescing is reconstructed after
       the fact: each lane's k-th dynamic execution of a memory
       instruction at a given pc joins access group (pc, warp, k). For
       global memory a group costs one transaction per distinct 32-word
       segment; for shared memory a group costs max-over-banks of the
       distinct-address count (equal addresses broadcast), the same rule
       as the static analyzer in {!Verify}. Groups are discarded at every
       barrier so memory stays proportional to one phase's traffic. The
       per-lane ordinal alignment is exact for warp-uniform trip counts
       (all kernels our generators emit) and an approximation under
       intra-warp loop divergence. *)
    let n_warps = (n_threads + 31) / 32 in
    let ordinals : (int, int array) Hashtbl.t = Hashtbl.create 64 in
    let gsegs : (int * int, int list ref) Hashtbl.t = Hashtbl.create 256 in
    let sgroups : (int * int, sgroup) Hashtbl.t = Hashtbl.create 256 in
    let access_group pc lin =
      let key = (pc * n_warps) + (lin lsr 5) in
      let lanes =
        match Hashtbl.find_opt ordinals key with
        | Some a -> a
        | None ->
          let a = Array.make 32 0 in
          Hashtbl.add ordinals key a;
          a
      in
      let lane = lin land 31 in
      let k = lanes.(lane) in
      lanes.(lane) <- k + 1;
      (key, k)
    in
    let record_global ~store lin pc addr =
      let g = access_group pc lin in
      let seg = addr asr 5 in
      let segs =
        match Hashtbl.find_opt gsegs g with
        | Some s -> s
        | None ->
          let s = ref [] in
          Hashtbl.add gsegs g s;
          s
      in
      if not (List.mem seg !segs) then begin
        segs := seg :: !segs;
        if store then counters.gst_transactions <- counters.gst_transactions + 1
        else counters.gld_transactions <- counters.gld_transactions + 1
      end
    in
    let record_shared lin pc addr =
      let g = access_group pc lin in
      let grp =
        match Hashtbl.find_opt sgroups g with
        | Some grp -> grp
        | None ->
          let grp = { s_addrs = []; s_banks = []; s_passes = 0 } in
          Hashtbl.add sgroups g grp;
          grp
      in
      if not (List.mem addr grp.s_addrs) then begin
        grp.s_addrs <- addr :: grp.s_addrs;
        let bank = addr land 31 in
        let c = (match List.assoc_opt bank grp.s_banks with Some c -> c | None -> 0) + 1 in
        grp.s_banks <- (bank, c) :: List.remove_assoc bank grp.s_banks;
        if c > grp.s_passes then begin
          grp.s_passes <- c;
          counters.shared_transactions <- counters.shared_transactions + 1
        end
      end
    in
    let phase_reset () =
      Hashtbl.reset ordinals;
      Hashtbl.reset gsegs;
      Hashtbl.reset sgroups
    in
    let special th = function
      | Tid_x -> let x, _, _ = th.tid in x
      | Tid_y -> let _, y, _ = th.tid in y
      | Tid_z -> let _, _, z = th.tid in z
      | Ctaid_x -> let x, _, _ = th.ctaid in x
      | Ctaid_y -> let _, y, _ = th.ctaid in y
      | Ctaid_z -> let _, _, z = th.ctaid in z
      | Ntid_x -> bx | Ntid_y -> by | Ntid_z -> bz
      | Nctaid_x -> gx | Nctaid_y -> gy | Nctaid_z -> gz
    in
    let ival th = function
      | Ireg r -> th.iregs.(r)
      | Iimm v -> v
      | Iparam slot -> ints.(slot)
      | Ispecial s -> special th s
    in
    let fval th = function Freg r -> th.fregs.(r) | Fimm v -> v in
    let global_get ~pc slot addr =
      let buf = buffers.(slot) in
      if addr < 0 || addr >= Array.length buf then
        trap_at pc "%s: global load out of bounds: %s[%d] (len %d)" p.name
          p.buf_params.(slot) addr (Array.length buf);
      buf.(addr)
    in
    let global_set ~pc slot addr v =
      let buf = buffers.(slot) in
      if addr < 0 || addr >= Array.length buf then
        trap_at pc "%s: global store out of bounds: %s[%d] (len %d)" p.name
          p.buf_params.(slot) addr (Array.length buf);
      buf.(addr) <- v
    in
    let shared_get ~pc addr =
      if addr < 0 || addr >= p.shared_words then
        trap_at pc "%s: shared load out of bounds: [%d] (size %d)" p.name addr
          p.shared_words;
      shared.(addr)
    in
    let shared_set ~pc addr v =
      if addr < 0 || addr >= p.shared_words then
        trap_at pc "%s: shared store out of bounds: [%d] (size %d)" p.name addr
          p.shared_words;
      shared.(addr) <- v
    in
    let shared_i_get ~pc addr =
      if addr < 0 || addr >= p.shared_int_words then
        trap_at pc "%s: shared int load out of bounds: [%d] (size %d)" p.name
          addr p.shared_int_words;
      shared_i.(addr)
    in
    let shared_i_set ~pc addr v =
      if addr < 0 || addr >= p.shared_int_words then
        trap_at pc "%s: shared int store out of bounds: [%d] (size %d)" p.name
          addr p.shared_int_words;
      shared_i.(addr) <- v
    in
    (* Execute [th] until it reaches a barrier or returns. *)
    let run_to_barrier th =
      let rec step () =
        if th.pc >= n_body then
          trap_at (n_body - 1) "%s: fell off end of kernel" p.name;
        let { Instr.op; guard } = body.(th.pc) in
        match op with
        | Instr.Label _ -> th.pc <- th.pc + 1; step ()
        | _ ->
          charge ();
          let active =
            match guard with
            | None -> true
            | Some (preg, sense) -> th.pregs.(preg) = sense
          in
          if not active then begin
            counters.predicated_off <- counters.predicated_off + 1;
            (* Masked instructions still occupy an issue slot; count them in
               their category so static/dynamic cross-checks line up. *)
            (match Instr.categorize op with
             | Some Cat_ialu -> counters.ialu <- counters.ialu + 1
             | Some Cat_fma -> counters.fma <- counters.fma + 1
             | Some Cat_fp_other -> counters.fp_other <- counters.fp_other + 1
             | Some Cat_ld_global -> counters.ld_global <- counters.ld_global + 1
             | Some Cat_st_global -> counters.st_global <- counters.st_global + 1
             | Some Cat_ld_shared -> counters.ld_shared <- counters.ld_shared + 1
             | Some Cat_st_shared -> counters.st_shared <- counters.st_shared + 1
             | Some Cat_atom -> counters.atom <- counters.atom + 1
             | Some Cat_bar -> counters.bar <- counters.bar + 1
             | Some Cat_branch -> counters.branch <- counters.branch + 1
             | Some Cat_pred -> counters.pred <- counters.pred + 1
             | Some Cat_mov -> counters.mov <- counters.mov + 1
             | None -> ());
            th.pc <- th.pc + 1;
            step ()
          end
          else begin
            match op with
            | Instr.Label _ -> assert false
            | Mov (d, a) ->
              counters.mov <- counters.mov + 1;
              th.iregs.(d) <- ival th a;
              th.pc <- th.pc + 1; step ()
            | Movf (d, a) ->
              counters.mov <- counters.mov + 1;
              th.fregs.(d) <- fval th a;
              th.pc <- th.pc + 1; step ()
            | Iadd (d, a, b) ->
              counters.ialu <- counters.ialu + 1;
              th.iregs.(d) <- ival th a + ival th b;
              th.pc <- th.pc + 1; step ()
            | Isub (d, a, b) ->
              counters.ialu <- counters.ialu + 1;
              th.iregs.(d) <- ival th a - ival th b;
              th.pc <- th.pc + 1; step ()
            | Imul (d, a, b) ->
              counters.ialu <- counters.ialu + 1;
              th.iregs.(d) <- ival th a * ival th b;
              th.pc <- th.pc + 1; step ()
            | Imad (d, a, b, c) ->
              counters.ialu <- counters.ialu + 1;
              th.iregs.(d) <- (ival th a * ival th b) + ival th c;
              th.pc <- th.pc + 1; step ()
            | Idiv (d, a, b) ->
              counters.ialu <- counters.ialu + 1;
              let bv = ival th b in
              if bv = 0 then trap_at th.pc "%s: division by zero" p.name;
              th.iregs.(d) <- ival th a / bv;
              th.pc <- th.pc + 1; step ()
            | Irem (d, a, b) ->
              counters.ialu <- counters.ialu + 1;
              let bv = ival th b in
              if bv = 0 then trap_at th.pc "%s: remainder by zero" p.name;
              th.iregs.(d) <- ival th a mod bv;
              th.pc <- th.pc + 1; step ()
            | Imin (d, a, b) ->
              counters.ialu <- counters.ialu + 1;
              th.iregs.(d) <- min (ival th a) (ival th b);
              th.pc <- th.pc + 1; step ()
            | Imax (d, a, b) ->
              counters.ialu <- counters.ialu + 1;
              th.iregs.(d) <- max (ival th a) (ival th b);
              th.pc <- th.pc + 1; step ()
            | Ishl (d, a, b) ->
              counters.ialu <- counters.ialu + 1;
              th.iregs.(d) <- ival th a lsl ival th b;
              th.pc <- th.pc + 1; step ()
            | Ishr (d, a, b) ->
              counters.ialu <- counters.ialu + 1;
              th.iregs.(d) <- ival th a asr ival th b;
              th.pc <- th.pc + 1; step ()
            | Iand (d, a, b) ->
              counters.ialu <- counters.ialu + 1;
              th.iregs.(d) <- ival th a land ival th b;
              th.pc <- th.pc + 1; step ()
            | Ior (d, a, b) ->
              counters.ialu <- counters.ialu + 1;
              th.iregs.(d) <- ival th a lor ival th b;
              th.pc <- th.pc + 1; step ()
            | Setp (cmp, d, a, b) ->
              counters.pred <- counters.pred + 1;
              th.pregs.(d) <- eval_cmp cmp (ival th a) (ival th b);
              th.pc <- th.pc + 1; step ()
            | And_p (d, a, b) ->
              counters.pred <- counters.pred + 1;
              th.pregs.(d) <- th.pregs.(a) && th.pregs.(b);
              th.pc <- th.pc + 1; step ()
            | Or_p (d, a, b) ->
              counters.pred <- counters.pred + 1;
              th.pregs.(d) <- th.pregs.(a) || th.pregs.(b);
              th.pc <- th.pc + 1; step ()
            | Not_p (d, a) ->
              counters.pred <- counters.pred + 1;
              th.pregs.(d) <- not th.pregs.(a);
              th.pc <- th.pc + 1; step ()
            | Fadd (d, a, b) ->
              counters.fp_other <- counters.fp_other + 1;
              th.fregs.(d) <- fval th a +. fval th b;
              th.pc <- th.pc + 1; step ()
            | Fsub (d, a, b) ->
              counters.fp_other <- counters.fp_other + 1;
              th.fregs.(d) <- fval th a -. fval th b;
              th.pc <- th.pc + 1; step ()
            | Fmul (d, a, b) ->
              counters.fp_other <- counters.fp_other + 1;
              th.fregs.(d) <- fval th a *. fval th b;
              th.pc <- th.pc + 1; step ()
            | Ffma (d, a, b, c) ->
              counters.fma <- counters.fma + 1;
              th.fregs.(d) <- (fval th a *. fval th b) +. fval th c;
              th.pc <- th.pc + 1; step ()
            | Fmax (d, a, b) ->
              counters.fp_other <- counters.fp_other + 1;
              th.fregs.(d) <- Float.max (fval th a) (fval th b);
              th.pc <- th.pc + 1; step ()
            | Fmin (d, a, b) ->
              counters.fp_other <- counters.fp_other + 1;
              th.fregs.(d) <- Float.min (fval th a) (fval th b);
              th.pc <- th.pc + 1; step ()
            | Ld_global (d, slot, addr) ->
              counters.ld_global <- counters.ld_global + 1;
              let a = ival th addr in
              record_global ~store:false th.lin th.pc a;
              th.fregs.(d) <- global_get ~pc:th.pc slot a;
              th.pc <- th.pc + 1; step ()
            | Ld_global_i (d, slot, addr) ->
              counters.ld_global <- counters.ld_global + 1;
              let a = ival th addr in
              record_global ~store:false th.lin th.pc a;
              th.iregs.(d) <- int_of_float (global_get ~pc:th.pc slot a);
              th.pc <- th.pc + 1; step ()
            | Ld_shared (d, addr) ->
              counters.ld_shared <- counters.ld_shared + 1;
              let a = ival th addr in
              record_shared th.lin th.pc a;
              th.fregs.(d) <- shared_get ~pc:th.pc a;
              th.pc <- th.pc + 1; step ()
            | Ld_shared_i (d, addr) ->
              counters.ld_shared <- counters.ld_shared + 1;
              let a = ival th addr in
              record_shared th.lin th.pc a;
              th.iregs.(d) <- shared_i_get ~pc:th.pc a;
              th.pc <- th.pc + 1; step ()
            | St_global (slot, addr, v) ->
              counters.st_global <- counters.st_global + 1;
              let a = ival th addr in
              record_global ~store:true th.lin th.pc a;
              global_set ~pc:th.pc slot a (store_round (fval th v));
              th.pc <- th.pc + 1; step ()
            | St_shared (addr, v) ->
              counters.st_shared <- counters.st_shared + 1;
              let a = ival th addr in
              record_shared th.lin th.pc a;
              shared_set ~pc:th.pc a (store_round (fval th v));
              th.pc <- th.pc + 1; step ()
            | St_shared_i (addr, v) ->
              counters.st_shared <- counters.st_shared + 1;
              let a = ival th addr in
              record_shared th.lin th.pc a;
              shared_i_set ~pc:th.pc a (ival th v);
              th.pc <- th.pc + 1; step ()
            | Atom_global_add (slot, addr, v) ->
              counters.atom <- counters.atom + 1;
              let a = ival th addr in
              global_set ~pc:th.pc slot a
                (store_round (global_get ~pc:th.pc slot a +. fval th v));
              th.pc <- th.pc + 1; step ()
            | Bra target ->
              counters.branch <- counters.branch + 1;
              (match Hashtbl.find_opt labels target with
               | Some idx -> th.pc <- idx
               | None -> trap_at th.pc "%s: undefined label %s" p.name target);
              step ()
            | Bar ->
              counters.bar <- counters.bar + 1;
              th.pc <- th.pc + 1;
              Hit_bar
            | Ret ->
              counters.branch <- counters.branch + 1;
              th.done_ <- true;
              Hit_ret
          end
      in
      step ()
    in
    (* Barrier-phase loop: all threads must agree on Hit_bar vs Hit_ret. *)
    let rec phases () =
      let where stop (th : thread) =
        (* After Hit_bar the pc has advanced past the Bar; Ret leaves it. *)
        match stop with
        | Hit_bar -> Printf.sprintf "hit barrier at %s" (describe_pc body (th.pc - 1))
        | Hit_ret -> Printf.sprintf "returned at %s" (describe_pc body th.pc)
      in
      let first = run_to_barrier threads.(0) in
      for i = 1 to n_threads - 1 do
        let stop = run_to_barrier threads.(i) in
        if stop <> first then
          trap_run "%s: barrier divergence: thread 0 %s but thread %d %s" p.name
            (where first threads.(0)) i (where stop threads.(i))
      done;
      phase_reset ();
      match first with Hit_ret -> () | Hit_bar -> phases ()
    in
    phases ()
  in
  for cz = 0 to gz - 1 do
    for cy = 0 to gy - 1 do
      for cx = 0 to gx - 1 do
        run_block cx cy cz
      done
    done
  done;
  counters
