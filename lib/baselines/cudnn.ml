module GP = Codegen.Gemm_params
module CP = Codegen.Conv_params

let cfg ?(ks = 1) ?(kl = 1) ?(kg = 1) ?(db = 2) ~ms ~ns ~ml ~nl ~u ~vec () =
  { GP.ms; ns; ks; ml; nl; u; kl; kg; vec; db }

(* Implicit-GEMM tiles for (NPQ × K) outputs: tall tiles along the pixel
   dimension, modest filter-dimension tiles, staging depths sized for
   Maxwell's 96 KB of shared memory per SM. No C·R·S splitting. *)
let tiles =
  [ cfg ~ms:8 ~ns:4 ~ml:128 ~nl:32 ~u:16 ~vec:4 ();
    cfg ~ms:8 ~ns:8 ~ml:128 ~nl:64 ~u:8 ~vec:4 ();
    cfg ~ms:8 ~ns:4 ~ml:64 ~nl:32 ~u:16 ~vec:4 ();
    cfg ~ms:4 ~ns:4 ~ml:64 ~nl:64 ~u:8 ~vec:2 ();
    cfg ~ms:4 ~ns:4 ~ml:32 ~nl:32 ~u:8 ~vec:2 ();
    cfg ~ms:2 ~ns:4 ~ml:16 ~nl:32 ~u:8 ~vec:1 () ]

(* fp16: cuDNN v6/7 shipped fp16x2 for the common vision shapes only. *)
let fp16x2_tiles =
  [ cfg ~ms:8 ~ns:8 ~ml:128 ~nl:64 ~u:8 ~vec:4 ();
    cfg ~ms:8 ~ns:4 ~ml:64 ~nl:32 ~u:16 ~vec:4 () ]

let fp16_scalar_tiles =
  [ cfg ~ms:8 ~ns:4 ~ml:128 ~nl:32 ~u:16 ~vec:1 ();
    cfg ~ms:4 ~ns:4 ~ml:64 ~nl:32 ~u:8 ~vec:1 () ]

let kernel_set (_device : Gpu.Device.t) (dtype : Ptx.Types.dtype) =
  match dtype with
  | F32 | F64 -> tiles
  | F16 -> fp16x2_tiles @ fp16_scalar_tiles @ tiles

let legal device (i : CP.input) c =
  CP.structurally_legal i c && Gpu.Executor.legal device (CP.cost i c)

(* Selection keyed on the implicit-GEMM extents, thresholds tuned (by the
   original authors, on Maxwell) for DeepBench-style convolutions. *)
let heuristic_pick device (i : CP.input) =
  let m = CP.npq i in
  let preferred =
    match i.dtype with
    | F16 ->
      if m >= 8192 && i.k >= 32 then
        [ cfg ~ms:8 ~ns:8 ~ml:128 ~nl:64 ~u:8 ~vec:4 ();
          cfg ~ms:8 ~ns:4 ~ml:64 ~nl:32 ~u:16 ~vec:4 () ]
      else
        [ cfg ~ms:8 ~ns:4 ~ml:64 ~nl:32 ~u:16 ~vec:4 ();
          cfg ~ms:4 ~ns:4 ~ml:64 ~nl:32 ~u:8 ~vec:1 () ]
    | F32 | F64 ->
      if m >= 16384 then
        if i.k >= 64 then
          [ cfg ~ms:8 ~ns:8 ~ml:128 ~nl:64 ~u:8 ~vec:4 ();
            cfg ~ms:8 ~ns:4 ~ml:128 ~nl:32 ~u:16 ~vec:4 () ]
        else [ cfg ~ms:8 ~ns:4 ~ml:128 ~nl:32 ~u:16 ~vec:4 () ]
      else if m >= 2048 then
        [ cfg ~ms:8 ~ns:4 ~ml:64 ~nl:32 ~u:16 ~vec:4 ();
          cfg ~ms:4 ~ns:4 ~ml:64 ~nl:64 ~u:8 ~vec:2 () ]
      else
        [ cfg ~ms:4 ~ns:4 ~ml:32 ~nl:32 ~u:8 ~vec:2 ();
          cfg ~ms:2 ~ns:4 ~ml:16 ~nl:32 ~u:8 ~vec:1 () ]
  in
  List.find_opt (legal device i) (preferred @ kernel_set device i.dtype)

let heuristic ?noise rng device (i : CP.input) =
  match heuristic_pick device i with
  | None -> None
  | Some c ->
    (match Gpu.Executor.measure_best_of ?noise rng device (CP.cost i c) with
     | None -> None
     | Some m -> Some (c, m))

let best_kernel ?noise rng device (i : CP.input) =
  let best = ref None in
  List.iter
    (fun c ->
      if legal device i c then
        match Gpu.Executor.measure_best_of ?noise rng device (CP.cost i c) with
        | None -> ()
        | Some m ->
          (match !best with
           | Some (_, bm) when bm.Gpu.Executor.seconds <= m.Gpu.Executor.seconds -> ()
           | _ -> best := Some (c, m)))
    (kernel_set device i.dtype);
  !best
