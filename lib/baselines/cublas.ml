module GP = Codegen.Gemm_params

let cfg ?(ks = 1) ?(kl = 1) ?(kg = 1) ?(db = 2) ~ms ~ns ~ml ~nl ~u ~vec () =
  { GP.ms; ns; ks; ml; nl; u; kl; kg; vec; db }

(* Scalar (fp32 / fp64 / promoted fp16) tile shapes, descending area.
   N_L ∈ {64, 128} only and K_L = 1 everywhere, as the paper observes of
   cuBLAS; thread counts match the vendor kernels (256 threads for the
   128-wide tiles). *)
let scalar_tiles =
  [ cfg ~ms:8 ~ns:8 ~ml:128 ~nl:128 ~u:8 ~vec:4 ();
    cfg ~ms:8 ~ns:4 ~ml:128 ~nl:64 ~u:8 ~vec:4 ();
    cfg ~ms:4 ~ns:8 ~ml:64 ~nl:128 ~u:8 ~vec:4 ();
    cfg ~ms:4 ~ns:8 ~ml:64 ~nl:64 ~u:8 ~vec:4 ();
    cfg ~ms:2 ~ns:8 ~ml:32 ~nl:64 ~u:8 ~vec:2 ();
    cfg ~ms:2 ~ns:4 ~ml:16 ~nl:64 ~u:8 ~vec:2 () ]

(* Global-split variants for the deep-K regime (K_G > 1, still K_L = 1). *)
let split_tiles =
  List.concat_map
    (fun kg ->
      [ cfg ~ms:4 ~ns:8 ~ml:64 ~nl:64 ~u:8 ~vec:4 ~kg ();
        cfg ~ms:2 ~ns:8 ~ml:32 ~nl:64 ~u:8 ~vec:2 ~kg ();
        cfg ~ms:2 ~ns:4 ~ml:16 ~nl:64 ~u:8 ~vec:2 ~kg () ])
    [ 4; 16; 32 ]

(* fp16x2 kernels: only the two square-friendly shapes (the paper
   attributes cuBLAS's LINPACK-only fp16 excellence to "a limited set of
   NVIDIA kernels implementing this feature"). *)
let fp16x2_tiles =
  [ cfg ~ms:8 ~ns:8 ~ml:128 ~nl:128 ~u:8 ~vec:4 ();
    cfg ~ms:8 ~ns:4 ~ml:128 ~nl:64 ~u:8 ~vec:4 () ]

(* Scalar fp16 fallbacks (vec = 1, so no fp16x2 packing). *)
let fp16_scalar_tiles =
  [ cfg ~ms:4 ~ns:8 ~ml:64 ~nl:64 ~u:8 ~vec:1 ();
    cfg ~ms:8 ~ns:4 ~ml:128 ~nl:64 ~u:8 ~vec:1 () ]

let kernel_set (_device : Gpu.Device.t) (dtype : Ptx.Types.dtype) =
  match dtype with
  | F32 | F64 -> scalar_tiles @ split_tiles
  | F16 -> fp16x2_tiles @ fp16_scalar_tiles @ split_tiles

let legal device (i : GP.input) c =
  GP.structurally_legal i c && Gpu.Executor.legal device (GP.cost i c)

let grid_blocks (i : GP.input) (c : GP.config) =
  let ceil_div a b = (a + b - 1) / b in
  ceil_div i.m c.ml * ceil_div i.n c.nl * c.kg

(* Handcrafted selection, in the style of a vendor library: walk the tile
   list from largest to smallest and keep the first that fills the
   machine, then apply a (deliberately incomplete) rule for global
   reduction splitting. The incompleteness is the point: §7.3 traces
   cuBLAS's ICA and skinny-DeepBench losses to exactly such heuristic
   holes — no tile narrower than N_L = 64 exists, the K_G rule misses the
   large-M·N part of the deep-reduction regime, and K_L is never used. *)
let heuristic_pick device (i : GP.input) =
  let fills c = grid_blocks i c >= 2 * device.Gpu.Device.sm_count in
  let pick tiles =
    let legal_tiles = List.filter (legal device i) tiles in
    match List.find_opt fills legal_tiles with
    | Some c -> Some c
    | None ->
      (* Nothing fills the device; take the smallest legal tile. *)
      (match List.rev legal_tiles with c :: _ -> Some c | [] -> None)
  in
  let split_rule =
    (* Fires only for small M·N *and* deep K: 256-channel ICA (M·N = 64k)
       falls through and runs unsplit. *)
    if i.k >= 4096 && i.m * i.n <= 4096 then
      pick (List.filter (fun c -> c.GP.kg = 4) split_tiles)
    else None
  in
  match split_rule with
  | Some c -> Some c
  | None ->
    (match i.dtype with
     | F16 ->
       if i.m >= 128 && i.n >= 96 then
         match pick fp16x2_tiles with
         | Some c -> Some c
         | None -> pick (fp16_scalar_tiles @ scalar_tiles)
       else pick (fp16_scalar_tiles @ scalar_tiles)
     | F32 | F64 -> pick scalar_tiles)

let heuristic ?noise rng device (i : GP.input) =
  match heuristic_pick device i with
  | None -> None
  | Some c ->
    (match Gpu.Executor.measure_best_of ?noise rng device (GP.cost i c) with
     | None -> None
     | Some m -> Some (c, m))

let best_kernel ?noise rng device (i : GP.input) =
  let best = ref None in
  List.iter
    (fun c ->
      if legal device i c then
        match Gpu.Executor.measure_best_of ?noise rng device (GP.cost i c) with
        | None -> ()
        | Some m ->
          (match !best with
           | Some (_, bm) when bm.Gpu.Executor.seconds <= m.Gpu.Executor.seconds -> ()
           | _ -> best := Some (c, m)))
    (kernel_set device i.dtype);
  !best
