(** A cuDNN-like baseline for multi-channel convolutions, pinned to the
    IMPLICIT_PRECOMP_GEMM algorithm the paper benchmarks against (§7.2,
    §7.4).

    The kernel set is tuned for the regime the paper says cuDNN was
    optimized for — "both Maxwell and DeepBench-like problems in mind
    (large NPQ, small K and intermediate CRS)" — and, like the real
    library at the time, offers no reduction splitting along C·R·S, which
    is why ISAAC pulls ahead on the deep reductions of Conv7/Conv8 and on
    Pascal, whose smaller per-SM shared memory punishes the
    Maxwell-tuned staging depths. *)

val kernel_set :
  Gpu.Device.t -> Ptx.Types.dtype -> Codegen.Gemm_params.config list

val heuristic_pick :
  Gpu.Device.t -> Codegen.Conv_params.input -> Codegen.Gemm_params.config option

val heuristic :
  ?noise:float -> Util.Rng.t -> Gpu.Device.t -> Codegen.Conv_params.input ->
  (Codegen.Gemm_params.config * Gpu.Executor.measurement) option
(** Run the convolution through cuDNN-style selection (the library call
    of Figures 9–11). *)

val best_kernel :
  ?noise:float -> Util.Rng.t -> Gpu.Device.t -> Codegen.Conv_params.input ->
  (Codegen.Gemm_params.config * Gpu.Executor.measurement) option
(** Best of the whole set. The paper notes cuDNN "provides no public way
    of benchmarking individual kernels"; we expose the oracle anyway for
    analysis. *)
