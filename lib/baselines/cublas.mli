(** A cuBLAS-like baseline: a small set of statically chosen, individually
    excellent kernels plus handcrafted selection heuristics.

    The kernel set and the heuristics deliberately encode the properties
    the paper documents about cuBLAS 8.0 (§7.3, §8.1–8.2):
    - only 64- and 128-wide tiling along N;
    - no block-level reduction splitting (K_L = 1 everywhere);
    - "some form of global reduction splitting (K_G > 1) to handle cases
      where K is large and M·N is small", with heuristics that fail to
      trigger it on part of that region (the ICA slowdowns);
    - fp16x2 only in a couple of square-friendly kernels (the LINPACK-only
      half-precision excellence of Figure 8).

    Both entry points run on the same simulated device as ISAAC:
    {!heuristic} models library calls through cuBLAS's selection logic,
    {!best_kernel} models the `cublasGemmEx` bypass ("Best Kernel" in
    Figures 7–8) that benchmarks every kernel in the set and keeps the
    fastest. *)

val kernel_set :
  Gpu.Device.t -> Ptx.Types.dtype -> Codegen.Gemm_params.config list
(** The static kernel list for a device/data-type (before per-input
    legality filtering). *)

val heuristic_pick :
  Gpu.Device.t -> Codegen.Gemm_params.input -> Codegen.Gemm_params.config option
(** What the selection heuristics choose for an input (no benchmarking).
    [None] only if no kernel in the set is legal for the input. *)

val heuristic :
  ?noise:float -> Util.Rng.t -> Gpu.Device.t -> Codegen.Gemm_params.input ->
  (Codegen.Gemm_params.config * Gpu.Executor.measurement) option
(** Run the heuristically selected kernel. *)

val best_kernel :
  ?noise:float -> Util.Rng.t -> Gpu.Device.t -> Codegen.Gemm_params.input ->
  (Codegen.Gemm_params.config * Gpu.Executor.measurement) option
(** Benchmark every legal kernel in the set and keep the fastest. *)
