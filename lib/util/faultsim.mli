(** Deterministic fault injection for crash-safety tests.

    The offline tuning pipeline must survive killed writes, corrupted
    artifacts and failed benchmarks (see DESIGN.md, "Artifact store &
    crash-safety"). This module turns those failures on from the
    environment so tests — and brave operators — can prove the recovery
    paths actually run:

    {v ISAAC_FAULTS=io_crash:0.01,io_corrupt:0.02,bench_fail:0.05 v}

    Each entry is [kind:rate]. To keep runs reproducible the injector is
    {e deterministic}, not random: a rate [r] means every
    [round(1/r)]-th call of {!fire} for that kind returns [true]
    (rate 1.0 = every call, rate 0 disables the site). Call counters are
    atomic, so worker domains can draw concurrently.

    Fault kinds consulted by the codebase:
    - [io_crash] — {!Artifact.write} dies after flushing half the
      payload to its temp file (the destination is never replaced);
    - [io_corrupt] — {!Artifact.write} flips one payload byte after
      checksumming, so the next read reports a checksum mismatch;
    - [bench_fail] — [Tuner.Dataset] benchmark measurements fail;
    - [gen_crash] — dataset generation dies right after writing a
      checkpoint (the kill-resume smoke test). *)

exception Injected of string
(** Raised by {!crash_point} (and by write paths honouring [io_crash])
    when a fault fires. Simulates the process dying mid-operation. *)

val configure : string -> unit
(** [configure spec] replaces the active fault table; [""] disables all
    faults and resets counters. Called automatically at startup with
    [ISAAC_FAULTS]. Raises [Invalid_argument] on a malformed spec. Not
    domain-safe: configure before spawning workers (tests only). *)

val active : unit -> bool
(** Whether any fault site is armed. *)

val period : string -> int option
(** The firing period of a kind, [None] if not armed. *)

val fire : string -> bool
(** [fire kind] advances [kind]'s counter and reports whether this call
    should fault. Always [false] for unarmed kinds. *)

val crash_point : string -> unit
(** [crash_point kind] raises {!Injected} when {!fire} says so. *)
