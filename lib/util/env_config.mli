(** Environment-variable driven experiment scaling.

    The paper benchmarks 50k–200k kernels on real GPUs; our experiments run
    the whole pipeline on a CPU, so every experiment size is scaled by
    [REPRO_SCALE] (default 1.0) and can be pinned individually with
    dedicated variables documented in EXPERIMENTS.md. *)

val scale : unit -> float
(** Global scale factor, [REPRO_SCALE], default 1.0, clamped to
    \[0.01, 100\]. *)

val scaled : int -> int
(** [scaled n] is [n * scale()] rounded, at least 1. *)

val int : string -> int -> int
(** [int name default] reads an integer env override. *)

val float : string -> float -> float
val bool : string -> bool -> bool

val string : string -> string -> string
(** [string name default] reads a raw string env override. *)

val seed : unit -> int
(** Root experiment seed, [REPRO_SEED], default 42. *)

val snapshot : unit -> (string * string) list
(** Every knob consulted so far through this module, with the effective
    value each lookup resolved to (default or override, post-clamping),
    sorted by name. The benchmark report embeds this as its environment
    metadata block, so recorded runs always carry the knobs that actually
    shaped them. *)
