(** Environment-variable driven experiment scaling.

    The paper benchmarks 50k–200k kernels on real GPUs; our experiments run
    the whole pipeline on a CPU, so every experiment size is scaled by
    [REPRO_SCALE] (default 1.0) and can be pinned individually with
    dedicated variables documented in EXPERIMENTS.md. *)

val scale : unit -> float
(** Global scale factor, [REPRO_SCALE], default 1.0, clamped to
    \[0.01, 100\]. *)

val scaled : int -> int
(** [scaled n] is [n * scale()] rounded, at least 1. *)

val int : string -> int -> int
(** [int name default] reads an integer env override. *)

val float : string -> float -> float
val bool : string -> bool -> bool

val seed : unit -> int
(** Root experiment seed, [REPRO_SEED], default 42. *)
