let recommended_domains () =
  let d =
    match Sys.getenv_opt "ISAAC_DOMAINS" with
    | Some s -> (match int_of_string_opt s with Some v -> v | None -> 1)
    | None -> Domain.recommended_domain_count ()
  in
  max 1 (min 8 d)

let chunk_sizes ~domains ~total =
  let base = total / domains and extra = total mod domains in
  List.init domains (fun i -> base + if i < extra then 1 else 0)

let run_chunks ~domains ~total f =
  if domains <= 1 || total <= 1 then [ f ~chunk:0 ~size:total ]
  else begin
    let sizes = chunk_sizes ~domains ~total in
    let handles =
      List.mapi (fun chunk size -> Domain.spawn (fun () -> f ~chunk ~size)) sizes
    in
    List.map Domain.join handles
  end

let run_chunks_offsets ~domains ~total f =
  if domains <= 1 || total <= 1 then [ f ~chunk:0 ~offset:0 ~size:total ]
  else begin
    let sizes = chunk_sizes ~domains ~total in
    let offsets =
      let acc = ref 0 in
      List.map (fun s -> let o = !acc in acc := o + s; o) sizes
    in
    let handles =
      List.mapi
        (fun chunk (offset, size) ->
          Domain.spawn (fun () ->
              match f ~chunk ~offset ~size with
              | v -> Ok v
              | exception e -> Error e))
        (List.combine offsets sizes)
    in
    (* Join every domain before surfacing a failure: a worker left running
       after the call returns could still be mutating shared state. *)
    let results = List.map Domain.join handles in
    List.map (function Ok v -> v | Error e -> raise e) results
  end

let iter_ranges ~domains ~total f =
  let (_ : unit list) =
    run_chunks_offsets ~domains ~total (fun ~chunk:_ ~offset ~size ->
        f ~offset ~size)
  in
  ()

let map_array ~domains f arr =
  let total = Array.length arr in
  if domains <= 1 || total < 2 * domains then Array.map f arr
  else begin
    let sizes = chunk_sizes ~domains ~total in
    let offsets =
      let acc = ref 0 in
      List.map (fun s -> let o = !acc in acc := o + s; o) sizes
    in
    let handles =
      List.map2
        (fun offset size ->
          Domain.spawn (fun () -> Array.init size (fun i -> f arr.(offset + i))))
        offsets sizes
    in
    Array.concat (List.map Domain.join handles)
  end
