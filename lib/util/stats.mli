(** Small statistics toolbox used by the tuner, the MLP trainer and the
    benchmark reporting code. *)

val mean : float array -> float
(** Arithmetic mean. Requires a non-empty array. *)

val variance : float array -> float
(** Population variance (biased, divides by [n]). *)

val stddev : float array -> float
(** Population standard deviation. *)

val geomean : float array -> float
(** Geometric mean of strictly positive values. *)

val median : float array -> float
(** Median (does not mutate its argument). *)

val mad : float array -> float
(** Median absolute deviation: [median |x_i - median a|], a robust
    spread estimate immune to the occasional wild benchmark outlier
    (unscaled — multiply by 1.4826 for a normal-consistent sigma). *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in \[0,100\], linear interpolation between
    order statistics. A single-element array yields that element for
    every [p]; interior ranks are clamped to the valid index range, so
    floating-point overshoot of [p/100*(n-1)] can never index out of
    bounds. Does not mutate its argument. *)

val bootstrap_ci :
  ?resamples:int ->
  ?confidence:float ->
  Rng.t ->
  float array ->
  estimator:(float array -> float) ->
  float * float
(** [bootstrap_ci rng a ~estimator] is a percentile-bootstrap confidence
    interval [(lo, hi)] for [estimator] over [a]: draw [resamples]
    (default 1000) with-replacement resamples of [a] using the seeded
    [rng] (deterministic for a fixed seed), apply [estimator] to each,
    and take the central [confidence] (default 0.95) mass of the
    resulting distribution. The estimator must not mutate or retain its
    argument — the same scratch buffer is reused across resamples. *)

val min : float array -> float
val max : float array -> float

val mse : float array -> float array -> float
(** Mean squared error between two same-length vectors. *)

val mae : float array -> float array -> float
(** Mean absolute error. *)

val correlation : float array -> float array -> float
(** Pearson correlation coefficient. *)

val argmax : float array -> int
(** Index of the maximum element (first occurrence). *)

val argmin : float array -> int
(** Index of the minimum element (first occurrence). *)
