(** Small statistics toolbox used by the tuner, the MLP trainer and the
    benchmark reporting code. *)

val mean : float array -> float
(** Arithmetic mean. Requires a non-empty array. *)

val variance : float array -> float
(** Population variance (biased, divides by [n]). *)

val stddev : float array -> float
(** Population standard deviation. *)

val geomean : float array -> float
(** Geometric mean of strictly positive values. *)

val median : float array -> float
(** Median (does not mutate its argument). *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in \[0,100\], linear interpolation between
    order statistics. *)

val min : float array -> float
val max : float array -> float

val mse : float array -> float array -> float
(** Mean squared error between two same-length vectors. *)

val mae : float array -> float array -> float
(** Mean absolute error. *)

val correlation : float array -> float array -> float
(** Pearson correlation coefficient. *)

val argmax : float array -> int
(** Index of the maximum element (first occurrence). *)

val argmin : float array -> int
(** Index of the minimum element (first occurrence). *)
