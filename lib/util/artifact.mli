(** Crash-safe persistence for tuning artifacts.

    The paper's economics (§5–§6) hinge on the offline phase's outputs —
    trained profiles, plan caches, datasets, benchmark reports — being
    paid for once and reused forever, so every artifact this repo writes
    goes through this module rather than a bare [open_out]:

    - {!write} is atomic: the bytes go to a temp file in the same
      directory, are fsynced, and are [rename]d over the destination.
      A crash at any point leaves the previous version readable; at
      worst a [*.tmp.<pid>] file is left behind.
    - Every file starts with a one-line header
      [isaac-artifact v1 <kind> <version> <bytes> <fnv64>] carrying the
      artifact kind, the writer's schema version, the payload length and
      an FNV-1a checksum.
    - {!read} validates all four and returns a [result]; a torn or
      corrupted artifact is always detected and reported, never
      partially loaded.

    Durability (fsync of file and containing directory) is on by default
    and can be dropped for bulk test runs with [ISAAC_FSYNC=0];
    atomicity is unconditional.

    {!Faultsim} hooks: [io_crash] kills a write after half the payload,
    [io_corrupt] flips a payload byte after checksumming. *)

type error =
  | Io of string                 (** open/read failure (incl. missing file) *)
  | Bad_header of string         (** no artifact header: wrong or legacy file *)
  | Kind_mismatch of { expected : string; found : string }
  | Version_newer of { supported : int; found : int }
      (** written by a newer schema than this binary understands *)
  | Truncated of { expected_bytes : int; got_bytes : int }
      (** payload length disagrees with the header (torn write) *)
  | Checksum_mismatch of { expected : string; found : string }

val error_to_string : path:string -> error -> string

val checksum : string -> string
(** FNV-1a 64-bit checksum, 16 lowercase hex digits. *)

val write : ?fsync:bool -> path:string -> kind:string -> version:int -> string -> unit
(** [write ~path ~kind ~version payload] atomically replaces [path].
    [kind] is a space-free tag such as ["isaac-profile"]; [version >= 1]
    is the writer's schema version for that kind. Raises [Sys_error] on
    I/O failure and {!Faultsim.Injected} under fault injection; in both
    cases the previous content of [path] is untouched. *)

val read : path:string -> kind:string -> max_version:int -> (int * string, error) result
(** [read ~path ~kind ~max_version] returns [(version, payload)] after
    validating the header's kind, version ([<= max_version]), payload
    length and checksum. Never raises. *)

(** {2 Change watching}

    A resident process serving artifacts from disk (the plan-serving
    daemon) needs to notice when an artifact is atomically replaced
    under it. {!fingerprint} captures the observable identity of the
    file — mtime, size, and the FNV-1a checksum of the {e raw file
    bytes} (header included) — and {!fingerprint_changed} answers "did
    it really change?" with a stat-only fast path: when mtime and size
    are untouched the file is not re-read, so polling every second is
    cheap even for large profiles. mtime granularity is
    filesystem-dependent (can be whole seconds), which is why the
    checksum, not the timestamp, is the authority whenever the stat
    fields move. *)

type fingerprint = {
  fp_mtime : float;    (** stat mtime at capture *)
  fp_size : int;       (** file size in bytes *)
  fp_checksum : string; (** {!checksum} of the raw file bytes *)
}

val fingerprint : path:string -> (fingerprint, error) result
(** Read and checksum the whole file. [Error (Io _)] if it cannot be
    opened or statted. *)

val fingerprint_changed :
  path:string ->
  fingerprint ->
  ([ `Unchanged of fingerprint | `Changed of fingerprint ], error) result
(** [fingerprint_changed ~path last] compares the file against a
    previously captured fingerprint. [`Unchanged fp] means the content
    checksum is the same — store the returned [fp], whose refreshed
    stat fields keep the next poll on the stat-only fast path.
    [`Changed fp] means the bytes differ; [fp] describes the new
    content. *)
