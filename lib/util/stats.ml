let mean a =
  assert (Array.length a > 0);
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  let m = mean a in
  let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
  acc /. float_of_int (Array.length a)

let stddev a = sqrt (variance a)

let geomean a =
  assert (Array.length a > 0);
  let acc = Array.fold_left (fun acc x -> assert (x > 0.0); acc +. log x) 0.0 a in
  exp (acc /. float_of_int (Array.length a))

let sorted a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let percentile a p =
  assert (Array.length a > 0 && p >= 0.0 && p <= 100.0);
  let b = sorted a in
  let n = Array.length b in
  if n = 1 then b.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    (* Clamp against floating-point overshoot (e.g. p near 100 where
       p/100*(n-1) can land an ulp above n-1). *)
    let lo = Stdlib.min (n - 1) (Stdlib.max 0 (int_of_float (Float.floor rank))) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = Stdlib.min 1.0 (Stdlib.max 0.0 (rank -. float_of_int lo)) in
    b.(lo) +. (frac *. (b.(hi) -. b.(lo)))
  end

let median a = percentile a 50.0

let mad a =
  let m = median a in
  median (Array.map (fun x -> Float.abs (x -. m)) a)

let bootstrap_ci ?(resamples = 1000) ?(confidence = 0.95) rng a
    ~estimator =
  assert (Array.length a > 0 && resamples > 0);
  assert (confidence > 0.0 && confidence < 1.0);
  let n = Array.length a in
  let scratch = Array.make n 0.0 in
  let estimates =
    Array.init resamples (fun _ ->
        for i = 0 to n - 1 do
          scratch.(i) <- a.(Rng.int rng n)
        done;
        estimator scratch)
  in
  let tail = 100.0 *. (1.0 -. confidence) /. 2.0 in
  (percentile estimates tail, percentile estimates (100.0 -. tail))
let min a = Array.fold_left Stdlib.min a.(0) a
let max a = Array.fold_left Stdlib.max a.(0) a

let mse a b =
  assert (Array.length a = Array.length b && Array.length a > 0);
  let acc = ref 0.0 in
  Array.iteri (fun i x -> let d = x -. b.(i) in acc := !acc +. (d *. d)) a;
  !acc /. float_of_int (Array.length a)

let mae a b =
  assert (Array.length a = Array.length b && Array.length a > 0);
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. Float.abs (x -. b.(i))) a;
  !acc /. float_of_int (Array.length a)

let correlation a b =
  assert (Array.length a = Array.length b && Array.length a > 1);
  let ma = mean a and mb = mean b in
  let num = ref 0.0 and da = ref 0.0 and db = ref 0.0 in
  Array.iteri
    (fun i x ->
      let xa = x -. ma and xb = b.(i) -. mb in
      num := !num +. (xa *. xb);
      da := !da +. (xa *. xa);
      db := !db +. (xb *. xb))
    a;
  !num /. sqrt (!da *. !db)

let argmax a =
  let best = ref 0 in
  Array.iteri (fun i x -> if x > a.(!best) then best := i) a;
  !best

let argmin a =
  let best = ref 0 in
  Array.iteri (fun i x -> if x < a.(!best) then best := i) a;
  !best
