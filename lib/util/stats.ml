let mean a =
  assert (Array.length a > 0);
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  let m = mean a in
  let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
  acc /. float_of_int (Array.length a)

let stddev a = sqrt (variance a)

let geomean a =
  assert (Array.length a > 0);
  let acc = Array.fold_left (fun acc x -> assert (x > 0.0); acc +. log x) 0.0 a in
  exp (acc /. float_of_int (Array.length a))

let sorted a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let percentile a p =
  assert (Array.length a > 0 && p >= 0.0 && p <= 100.0);
  let b = sorted a in
  let n = Array.length b in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = rank -. float_of_int lo in
  b.(lo) +. (frac *. (b.(hi) -. b.(lo)))

let median a = percentile a 50.0
let min a = Array.fold_left Stdlib.min a.(0) a
let max a = Array.fold_left Stdlib.max a.(0) a

let mse a b =
  assert (Array.length a = Array.length b && Array.length a > 0);
  let acc = ref 0.0 in
  Array.iteri (fun i x -> let d = x -. b.(i) in acc := !acc +. (d *. d)) a;
  !acc /. float_of_int (Array.length a)

let mae a b =
  assert (Array.length a = Array.length b && Array.length a > 0);
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. Float.abs (x -. b.(i))) a;
  !acc /. float_of_int (Array.length a)

let correlation a b =
  assert (Array.length a = Array.length b && Array.length a > 1);
  let ma = mean a and mb = mean b in
  let num = ref 0.0 and da = ref 0.0 and db = ref 0.0 in
  Array.iteri
    (fun i x ->
      let xa = x -. ma and xb = b.(i) -. mb in
      num := !num +. (xa *. xb);
      da := !da +. (xa *. xa);
      db := !db +. (xb *. xb))
    a;
  !num /. sqrt (!da *. !db)

let argmax a =
  let best = ref 0 in
  Array.iteri (fun i x -> if x > a.(!best) then best := i) a;
  !best

let argmin a =
  let best = ref 0 in
  Array.iteri (fun i x -> if x < a.(!best) then best := i) a;
  !best
