(** Deterministic, splittable pseudo-random number generation.

    All stochastic components of the reproduction (measurement noise,
    samplers, MLP initialization, train/test shuffling) draw from this
    module rather than [Stdlib.Random] so that every experiment is exactly
    reproducible from a seed.  The generator is xoshiro256**, seeded via
    splitmix64 as recommended by its authors. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a fresh generator from a 63-bit seed. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Deriving per-component generators from one root seed keeps experiments
    reproducible even when components consume varying amounts of
    randomness. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val serialize : t -> string
(** The full generator state as one line of four hex words, for
    checkpoint files. [deserialize (serialize t)] resumes [t]'s exact
    stream. *)

val deserialize : string -> t option
(** Inverse of {!serialize}; [None] on malformed input. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound). Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in \[lo, hi\] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val uniform : t -> float
(** [uniform t] is uniform in \[0, 1). *)

val bool : t -> bool
(** Fair coin flip. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val choice : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

val choice_weighted : t -> float array -> int
(** [choice_weighted t w] samples index [i] with probability
    [w.(i) / sum w].  Weights must be non-negative with a positive sum. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of \[0, n). *)
