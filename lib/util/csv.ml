let write path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (String.concat "," header);
      output_char oc '\n';
      List.iter
        (fun row ->
          let cells = Array.to_list (Array.map (Printf.sprintf "%.17g") row) in
          output_string oc (String.concat "," cells);
          output_char oc '\n')
        rows)

let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header =
        match In_channel.input_line ic with
        | None -> failwith (path ^ ": empty csv")
        | Some line -> String.split_on_char ',' line
      in
      let rows = ref [] in
      let rec loop () =
        match In_channel.input_line ic with
        | None -> ()
        | Some "" -> loop ()
        | Some line ->
          let cells = String.split_on_char ',' line in
          let row =
            Array.of_list
              (List.map
                 (fun s ->
                   match float_of_string_opt (String.trim s) with
                   | Some f -> f
                   | None -> failwith (path ^ ": bad float " ^ s))
                 cells)
          in
          rows := row :: !rows;
          loop ()
      in
      loop ();
      (header, List.rev !rows))
