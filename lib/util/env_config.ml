let float name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> ( match float_of_string_opt s with Some f -> f | None -> default)

let int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> ( match int_of_string_opt s with Some i -> i | None -> default)

let bool name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some ("0" | "false" | "no" | "off") -> false
  | Some _ -> default

let scale () = Float.min 100.0 (Float.max 0.01 (float "REPRO_SCALE" 1.0))
let scaled n = max 1 (int_of_float (Float.round (float_of_int n *. scale ())))
let seed () = int "REPRO_SEED" 42
