(* Every lookup records the effective value it resolved to, so the
   benchmark report's metadata block lists exactly the knobs the run
   actually consulted — the registry and the harness cannot disagree. *)
let consulted : (string, string) Hashtbl.t = Hashtbl.create 16

let record name value =
  Hashtbl.replace consulted name value;
  value

let snapshot () =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) consulted []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let float name default =
  let v =
    match Sys.getenv_opt name with
    | None -> default
    | Some s -> ( match float_of_string_opt s with Some f -> f | None -> default)
  in
  ignore (record name (Printf.sprintf "%.17g" v));
  v

let int name default =
  let v =
    match Sys.getenv_opt name with
    | None -> default
    | Some s -> ( match int_of_string_opt s with Some i -> i | None -> default)
  in
  ignore (record name (string_of_int v));
  v

let bool name default =
  let v =
    match Sys.getenv_opt name with
    | None -> default
    | Some ("1" | "true" | "yes" | "on") -> true
    | Some ("0" | "false" | "no" | "off") -> false
    | Some _ -> default
  in
  ignore (record name (string_of_bool v));
  v

let string name default =
  let v = match Sys.getenv_opt name with Some s -> s | None -> default in
  record name v

let scale () =
  let v = Float.min 100.0 (Float.max 0.01 (float "REPRO_SCALE" 1.0)) in
  ignore (record "REPRO_SCALE" (Printf.sprintf "%.17g" v));
  v

let scaled n = max 1 (int_of_float (Float.round (float_of_int n *. scale ())))
let seed () = int "REPRO_SEED" 42
