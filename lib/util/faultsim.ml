exception Injected of string

(* One fault site: a deterministic period (fire every [period]-th call)
   and a call counter. Counters are atomics so worker domains can draw
   concurrently; the table itself is only written by [configure], which
   callers run before spawning domains. *)
type site = { period : int; calls : int Atomic.t }

let sites : (string, site) Hashtbl.t = Hashtbl.create 8

let period_of_rate rate =
  if rate <= 0.0 then None
  else if rate >= 1.0 then Some 1
  else Some (max 1 (int_of_float (Float.round (1.0 /. rate))))

let parse_error spec reason =
  invalid_arg (Printf.sprintf "Faultsim: bad ISAAC_FAULTS spec %S (%s)" spec reason)

let configure spec =
  Hashtbl.reset sites;
  if String.trim spec <> "" then
    String.split_on_char ',' spec
    |> List.iter (fun entry ->
           let entry = String.trim entry in
           if entry <> "" then
             match String.split_on_char ':' entry with
             | [ kind; rate ] -> (
               let kind = String.trim kind in
               if kind = "" then parse_error spec "empty fault kind";
               match float_of_string_opt (String.trim rate) with
               | None -> parse_error spec ("bad rate for " ^ kind)
               | Some r -> (
                 match period_of_rate r with
                 | None -> () (* rate 0: site disabled *)
                 | Some period ->
                   Hashtbl.replace sites kind { period; calls = Atomic.make 0 }))
             | _ -> parse_error spec ("malformed entry " ^ entry))

let () = configure (Env_config.string "ISAAC_FAULTS" "")

let active () = Hashtbl.length sites > 0

let period kind =
  Option.map (fun s -> s.period) (Hashtbl.find_opt sites kind)

let fire kind =
  match Hashtbl.find_opt sites kind with
  | None -> false
  | Some s ->
    let n = 1 + Atomic.fetch_and_add s.calls 1 in
    n mod s.period = 0

let crash_point kind =
  if fire kind then
    raise (Injected (Printf.sprintf "injected fault %S" kind))
