type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ?align ~header rows =
  let cols = Array.length header in
  List.iter (fun r -> assert (Array.length r = cols)) rows;
  let align =
    match align with
    | Some a -> assert (Array.length a = cols); a
    | None -> Array.init cols (fun i -> if i = 0 then Left else Right)
  in
  let widths = Array.map String.length header in
  List.iter
    (fun r -> Array.iteri (fun i s -> widths.(i) <- max widths.(i) (String.length s)) r)
    rows;
  let buf = Buffer.create 1024 in
  let sep =
    "+" ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)) ^ "+"
  in
  let line r =
    let cells =
      Array.to_list (Array.mapi (fun i s -> " " ^ pad align.(i) widths.(i) s ^ " ") r)
    in
    "|" ^ String.concat "|" cells ^ "|"
  in
  Buffer.add_string buf (sep ^ "\n");
  Buffer.add_string buf (line header ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (line r ^ "\n")) rows;
  Buffer.add_string buf sep;
  Buffer.contents buf

let print ?align ~header rows = print_endline (render ?align ~header rows)
let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let fmt_pct x = Printf.sprintf "%.1f%%" (x *. 100.0)
