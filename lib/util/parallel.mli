(** Multicore fan-out helpers built directly on OCaml 5 [Domain].

    The tuner's two hot loops — benchmarking tens of thousands of
    sampled kernels (§4) and scoring the legal space through the MLP at
    runtime (§6) — are embarrassingly parallel; these helpers spread them
    across domains. Work functions must be thread-safe (the tuner's are:
    they share only immutable models and per-domain PRNGs).

    Results are deterministic for a fixed (seed, domain-count) pair. *)

val recommended_domains : unit -> int
(** [ISAAC_DOMAINS] env override, else [Domain.recommended_domain_count],
    capped at 8. *)

val map_array : domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]: the input is split into [domains] contiguous
    chunks, one domain each. [domains <= 1] degrades to plain map. *)

val run_chunks : domains:int -> total:int -> (chunk:int -> size:int -> 'a) -> 'a list
(** [run_chunks ~domains ~total f] splits [total] work items into
    [domains] contiguous chunks and runs [f ~chunk ~size] per chunk in
    its own domain, returning results in chunk order. *)

val run_chunks_offsets :
  domains:int ->
  total:int ->
  (chunk:int -> offset:int -> size:int -> 'a) ->
  'a list
(** Like {!run_chunks} but also hands each worker the starting [offset]
    of its contiguous chunk in item space, and joins {e every} spawned
    domain before re-raising the first worker exception (in chunk
    order) — no worker outlives the call, even on failure. Used by the
    interpreter's grid fan-out, where a trap in one chunk must not leave
    other domains racing on the output buffers. *)

val iter_ranges :
  domains:int -> total:int -> (offset:int -> size:int -> unit) -> unit
(** [iter_ranges ~domains ~total f] runs [f] over contiguous
    [offset, size) ranges covering [0, total), one domain per range, and
    joins them all (exceptions propagate as in {!run_chunks_offsets}).
    For side-effecting workers that write disjoint slices of a shared
    buffer — the batched planner fills its feature matrix this way. *)
