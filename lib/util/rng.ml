type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand a seed into the four xoshiro words. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.(logor (shift_left x k) (shift_right_logical x (64 - k)))

let next t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (next t) land max_int in
  create seed

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let serialize t = Printf.sprintf "%Lx %Lx %Lx %Lx" t.s0 t.s1 t.s2 t.s3

let deserialize s =
  match
    String.split_on_char ' ' (String.trim s) |> List.filter (( <> ) "")
  with
  | [ a; b; c; d ] -> (
    let word w = Scanf.sscanf w "%Lx%!" Fun.id in
    match { s0 = word a; s1 = word b; s2 = word c; s3 = word d } with
    | t -> Some t
    | exception _ -> None)
  | _ -> None

let int t bound =
  assert (bound > 0);
  let x = Int64.to_int (next t) land max_int in
  x mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let uniform t =
  (* 53 high-quality mantissa bits. *)
  let x = Int64.shift_right_logical (next t) 11 in
  Int64.to_float x *. 0x1.0p-53

let float t bound = uniform t *. bound
let bool t = Int64.logand (next t) 1L = 1L

let gaussian t =
  let rec draw () =
    let u = uniform t in
    if u <= 1e-300 then draw () else u
  in
  let u1 = draw () and u2 = uniform t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let choice t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let choice_weighted t w =
  let total = Array.fold_left ( +. ) 0.0 w in
  assert (total > 0.0);
  let x = float t total in
  let n = Array.length w in
  let rec go i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a
