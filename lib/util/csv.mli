(** Minimal CSV reading/writing used to persist tuning datasets and
    benchmark outputs. Only the subset needed here: float matrices with a
    header row, no quoting. *)

val write : string -> header:string list -> float array list -> unit
(** [write path ~header rows] writes one header line then one line per
    row, comma separated, full float precision. *)

val read : string -> string list * float array list
(** [read path] parses a file written by {!write}. Raises [Failure] on
    malformed input. *)
