(** ASCII table rendering for the benchmark harness and examples.

    All experiment output (the reproduction of each paper table/figure) is
    printed through this module so rows line up and can be diffed across
    runs. *)

type align = Left | Right

val render :
  ?align:align array ->
  header:string array ->
  string array list ->
  string
(** [render ~header rows] renders a boxed ASCII table.  All rows must have
    the same arity as [header].  [align] defaults to left for the first
    column and right for the rest (the common "name, numbers..." layout). *)

val print :
  ?align:align array ->
  header:string array ->
  string array list ->
  unit
(** [print] renders to stdout. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point float formatting, default 2 decimals. *)

val fmt_pct : float -> string
(** [fmt_pct 0.153] is ["15.3%"]. *)
