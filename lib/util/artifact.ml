let magic = "isaac-artifact"

type error =
  | Io of string
  | Bad_header of string
  | Kind_mismatch of { expected : string; found : string }
  | Version_newer of { supported : int; found : int }
  | Truncated of { expected_bytes : int; got_bytes : int }
  | Checksum_mismatch of { expected : string; found : string }

let error_to_string ~path = function
  | Io msg -> Printf.sprintf "%s: %s" path msg
  | Bad_header what -> Printf.sprintf "%s: not an artifact (%s)" path what
  | Kind_mismatch { expected; found } ->
    Printf.sprintf "%s: artifact kind %S, expected %S" path found expected
  | Version_newer { supported; found } ->
    Printf.sprintf "%s: artifact version %d is newer than supported %d" path
      found supported
  | Truncated { expected_bytes; got_bytes } ->
    Printf.sprintf "%s: payload is %d bytes, header promises %d (truncated?)"
      path got_bytes expected_bytes
  | Checksum_mismatch { expected; found } ->
    Printf.sprintf "%s: checksum %s does not match header %s (corrupt)" path
      found expected

(* FNV-1a, 64-bit: tiny, dependency-free, and plenty for detecting torn
   writes and bit rot — this is an integrity check, not a MAC. *)
let checksum s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

(* Consulted once at startup; per-write env lookups would race on
   Env_config's registry when checkpoints are written from domains. *)
let fsync_default = Env_config.bool "ISAAC_FSYNC" true

let fsync_channel oc =
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

(* Make the rename itself durable. Some filesystems refuse to fsync a
   directory fd; crash-safety degrades gracefully there. *)
let fsync_dir dir =
  let dir = if dir = "" then Filename.current_dir_name else dir in
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let corrupt payload =
  let b = Bytes.of_string payload in
  let i = Bytes.length b / 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
  Bytes.to_string b

let write ?(fsync = fsync_default) ~path ~kind ~version payload =
  if kind = "" || String.contains kind ' ' then
    invalid_arg ("Artifact.write: bad kind " ^ kind);
  if version < 1 then invalid_arg "Artifact.write: version must be >= 1";
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  let keep_tmp = ref false in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      if not !keep_tmp then ( try Sys.remove tmp with Sys_error _ -> ()))
    (fun () ->
      Printf.fprintf oc "%s v1 %s %d %d %s\n" magic kind version
        (String.length payload) (checksum payload);
      if Faultsim.fire "io_crash" then begin
        (* Simulate the process dying mid-write: half the payload reaches
           the temp file, which is left behind like real crash debris; the
           destination is never replaced. *)
        output_string oc (String.sub payload 0 (String.length payload / 2));
        flush oc;
        keep_tmp := true;
        raise (Faultsim.Injected ("io_crash while writing " ^ path))
      end;
      let payload =
        if Faultsim.fire "io_corrupt" && String.length payload > 0 then
          corrupt payload
        else payload
      in
      output_string oc payload;
      flush oc;
      if fsync then fsync_channel oc;
      keep_tmp := true);
  Sys.rename tmp path;
  if fsync then fsync_dir (Filename.dirname path)

let read ~path ~kind ~max_version =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Io msg)
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let file_len = in_channel_length ic in
        match input_line ic with
        | exception End_of_file -> Error (Bad_header "empty file")
        | header -> (
          match String.split_on_char ' ' header with
          | [ m; "v1"; k; version; bytes; sum ] when m = magic -> (
            match (int_of_string_opt version, int_of_string_opt bytes) with
            | Some version, Some bytes ->
              if k <> kind then
                Error (Kind_mismatch { expected = kind; found = k })
              else if version > max_version then
                Error (Version_newer { supported = max_version; found = version })
              else begin
                let got = file_len - pos_in ic in
                if got <> bytes then
                  Error (Truncated { expected_bytes = bytes; got_bytes = got })
                else
                  let payload = really_input_string ic bytes in
                  let found = checksum payload in
                  if found <> sum then
                    Error (Checksum_mismatch { expected = sum; found })
                  else Ok (version, payload)
              end
            | _ -> Error (Bad_header "non-numeric version/length"))
          | _ ->
            let shown =
              if String.length header > 40 then String.sub header 0 40 ^ "…"
              else header
            in
            Error (Bad_header ("first line " ^ String.escaped shown))))

(* --- change watching ---------------------------------------------------- *)

type fingerprint = {
  fp_mtime : float;
  fp_size : int;
  fp_checksum : string;
}

(* The checksum covers the raw file bytes (header included), so it
   changes whenever the artifact is rewritten with different content —
   even if the writer reused the same kind/version and the payload
   length happens to match. *)
let checksum_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Io msg)
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        Ok (checksum (really_input_string ic len), len))

let fingerprint ~path =
  match Unix.stat path with
  | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
  | st -> (
    match checksum_file path with
    | Error e -> Error e
    | Ok (sum, len) ->
      (* Re-stat after reading: if the file was replaced mid-read, the
         stale mtime forces the next poll to re-checksum. *)
      let mtime =
        match Unix.stat path with
        | st2 when st2.Unix.st_size = len -> st2.Unix.st_mtime
        | _ | (exception Unix.Unix_error _) -> st.Unix.st_mtime
      in
      Ok { fp_mtime = mtime; fp_size = len; fp_checksum = sum })

let fingerprint_changed ~path last =
  match Unix.stat path with
  | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
  | st ->
    if st.Unix.st_mtime = last.fp_mtime && st.Unix.st_size = last.fp_size then
      (* Cheap path: nothing the filesystem can see has moved. *)
      Ok (`Unchanged last)
    else (
      match fingerprint ~path with
      | Error e -> Error e
      | Ok fp ->
        if fp.fp_checksum = last.fp_checksum then
          (* Touched but identical (e.g. an idempotent re-save): adopt
             the new stat fields so the next poll stays cheap. *)
          Ok (`Unchanged fp)
        else Ok (`Changed fp))
