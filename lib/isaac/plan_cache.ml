(* Sharded, coalescing, LRU-bounded plan cache.

   Replaces the bare Hashtbls previously embedded in Isaac.t, which
   were unsynchronized: two domains calling plan_gemm concurrently
   could corrupt the table mid-resize or both run the (expensive)
   search for the same input.

   Design:

   - Keys hash onto [shards] (a power of two, default 16) independent
     shards, so writers on different shards never contend.
   - Each shard publishes an immutable snapshot of its table through an
     [Atomic.t]. Readers do one [Atomic.get] and a Hashtbl lookup on a
     table that is never mutated after publication — the read path takes
     no lock and cannot observe a half-built bucket. Writers serialize
     on the shard mutex, copy the table, mutate the copy, and publish
     it; copying costs O(shard size) but writes are cache misses and
     evictions, both of which are orders of magnitude rarer (and
     cheaper) than the planning run they sit next to.
   - A miss installs a [Pending] slot before computing, so N concurrent
     misses on the same key run the computation exactly once: the first
     arrival computes, the rest park on the pending slot's condition
     variable and receive the identical value ([Coalesced]).
   - Recency is a global tick counter ([Atomic.fetch_and_add]); a read
     hit stores the fresh tick into the entry's own atomic — still no
     lock. Eviction scans the published snapshots for the smallest tick
     (exact LRU, O(entries) per eviction) and removes it under that
     shard's lock, re-checking that the entry is still the one it chose.

   Timestamps come from the injectable [clock] (default
   Unix.gettimeofday — wall time, not monotonic); served ages are
   clamped at 0 so a backwards clock step cannot produce negative
   cache-hit ages in telemetry. *)

type outcome = Hit | Miss | Coalesced

let outcome_name = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Coalesced -> "coalesced"

type 'v entry = {
  value : 'v;
  inserted_at : float;
  weight : int;
  last_access : int Atomic.t;
}

type 'v pending_state = Waiting | Done of 'v | Failed of exn

type 'v pending = {
  pm : Mutex.t;
  pc : Condition.t;
  mutable state : 'v pending_state;
}

type 'v slot = Ready of 'v entry | Pending of 'v pending

type ('k, 'v) shard = {
  lock : Mutex.t;
  table : ('k, 'v slot) Hashtbl.t Atomic.t;
}

type stats = {
  hits : int;
  misses : int;
  coalesced : int;
  evictions : int;
  entries : int;
  bytes : int;
}

type ('k, 'v) t = {
  shards : ('k, 'v) shard array;
  mask : int;
  max_entries : int option;
  max_bytes : int option;
  clock : unit -> float;
  tick : int Atomic.t;
  n_entries : int Atomic.t;
  n_bytes : int Atomic.t;
  c_hits : int Atomic.t;
  c_misses : int Atomic.t;
  c_coalesced : int Atomic.t;
  c_evictions : int Atomic.t;
  metrics_prefix : string option;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(shards = 16) ?max_entries ?max_bytes
    ?(clock = Unix.gettimeofday) ?metrics_prefix () =
  if shards < 1 then invalid_arg "Plan_cache.create: shards must be >= 1";
  (match max_entries with
   | Some m when m < 1 -> invalid_arg "Plan_cache.create: max_entries must be >= 1"
   | _ -> ());
  (match max_bytes with
   | Some m when m < 1 -> invalid_arg "Plan_cache.create: max_bytes must be >= 1"
   | _ -> ());
  let shards = next_pow2 shards in
  { shards =
      Array.init shards (fun _ ->
          { lock = Mutex.create (); table = Atomic.make (Hashtbl.create 8) });
    mask = shards - 1;
    max_entries;
    max_bytes;
    clock;
    tick = Atomic.make 0;
    n_entries = Atomic.make 0;
    n_bytes = Atomic.make 0;
    c_hits = Atomic.make 0;
    c_misses = Atomic.make 0;
    c_coalesced = Atomic.make 0;
    c_evictions = Atomic.make 0;
    metrics_prefix }

let shard_of t k = t.shards.((Hashtbl.hash k) land t.mask)

let next_tick t = Atomic.fetch_and_add t.tick 1

(* Must be called with [shard.lock] held: copy, mutate, publish. *)
let mutate shard f =
  let table = Hashtbl.copy (Atomic.get shard.table) in
  f table;
  Atomic.set shard.table table

let age_of t e = Float.max 0.0 (t.clock () -. e.inserted_at)

let touch t e = Atomic.set e.last_access (next_tick t)

(* --- eviction ---------------------------------------------------------- *)

let over_budget t =
  (match t.max_entries with
   | Some m -> Atomic.get t.n_entries > m
   | None -> false)
  || (match t.max_bytes with
      | Some m -> Atomic.get t.n_bytes > m
      | None -> false)

let record_eviction t weight =
  Atomic.decr t.n_entries;
  ignore (Atomic.fetch_and_add t.n_bytes (-weight));
  Atomic.incr t.c_evictions;
  match t.metrics_prefix with
  | Some p -> Obs.Telemetry.incr (p ^ ".evictions")
  | None -> ()

(* Scan the published snapshots (no locks) for the globally
   least-recently-used Ready entry, then remove it under its shard's
   lock, re-checking identity — the entry may have been touched,
   replaced or already evicted since the scan. Loops until the cache is
   back under budget or nothing evictable remains (all slots pending). *)
let rec evict_until_within_budget t =
  if over_budget t then begin
    let best = ref None in
    Array.iteri
      (fun si shard ->
        Hashtbl.iter
          (fun k slot ->
            match slot with
            | Ready e ->
              let la = Atomic.get e.last_access in
              (match !best with
               | Some (_, _, _, bla) when bla <= la -> ()
               | _ -> best := Some (si, k, e, la))
            | Pending _ -> ())
          (Atomic.get shard.table))
      t.shards;
    match !best with
    | None -> ()
    | Some (si, k, e, _) ->
      let shard = t.shards.(si) in
      Mutex.lock shard.lock;
      let removed =
        match Hashtbl.find_opt (Atomic.get shard.table) k with
        | Some (Ready e') when e' == e ->
          mutate shard (fun table -> Hashtbl.remove table k);
          true
        | _ -> false
      in
      Mutex.unlock shard.lock;
      if removed then record_eviction t e.weight;
      evict_until_within_budget t
  end

(* --- reads ------------------------------------------------------------- *)

let find t k =
  match Hashtbl.find_opt (Atomic.get (shard_of t k).table) k with
  | Some (Ready e) ->
    touch t e;
    Some e.value
  | Some (Pending _) | None -> None

let mem t k =
  match Hashtbl.find_opt (Atomic.get (shard_of t k).table) k with
  | Some (Ready _) -> true
  | Some (Pending _) | None -> false

(* --- coalescing get-or-compute ----------------------------------------- *)

let await t p =
  Mutex.lock p.pm;
  let rec wait () =
    match p.state with
    | Waiting ->
      Condition.wait p.pc p.pm;
      wait ()
    | Done v ->
      Mutex.unlock p.pm;
      Atomic.incr t.c_coalesced;
      (v, Coalesced, 0.0)
    | Failed exn ->
      Mutex.unlock p.pm;
      raise exn
  in
  wait ()

let hit t e =
  let age = age_of t e in
  touch t e;
  Atomic.incr t.c_hits;
  (e.value, Hit, age)

let resolve p state =
  Mutex.lock p.pm;
  p.state <- state;
  Condition.broadcast p.pc;
  Mutex.unlock p.pm

let find_or_compute t k ~weight f =
  let shard = shard_of t k in
  match Hashtbl.find_opt (Atomic.get shard.table) k with
  | Some (Ready e) -> hit t e
  | Some (Pending p) -> await t p
  | None -> (
    Mutex.lock shard.lock;
    (* Re-check under the lock: another domain may have installed a
       slot between our lock-free probe and the acquisition. *)
    match Hashtbl.find_opt (Atomic.get shard.table) k with
    | Some (Ready e) ->
      Mutex.unlock shard.lock;
      hit t e
    | Some (Pending p) ->
      Mutex.unlock shard.lock;
      await t p
    | None -> (
      let p = { pm = Mutex.create (); pc = Condition.create (); state = Waiting } in
      mutate shard (fun table -> Hashtbl.replace table k (Pending p));
      Mutex.unlock shard.lock;
      (* The computation runs with no locks held: other keys hit, miss
         and evict concurrently; other arrivals for this key park on
         [p]. *)
      match f () with
      | v ->
        let e =
          { value = v;
            inserted_at = t.clock ();
            weight = weight v;
            last_access = Atomic.make (next_tick t) }
        in
        Mutex.lock shard.lock;
        mutate shard (fun table -> Hashtbl.replace table k (Ready e));
        Mutex.unlock shard.lock;
        Atomic.incr t.n_entries;
        ignore (Atomic.fetch_and_add t.n_bytes e.weight);
        Atomic.incr t.c_misses;
        resolve p (Done v);
        evict_until_within_budget t;
        (v, Miss, 0.0)
      | exception exn ->
        (* Leave no trace: the pending slot comes out of the table so a
           later request retries the computation, and waiters re-raise
           the same exception. *)
        Mutex.lock shard.lock;
        mutate shard (fun table -> Hashtbl.remove table k);
        Mutex.unlock shard.lock;
        resolve p (Failed exn);
        raise exn))

(* --- direct insertion (plan-cache preloading) --------------------------- *)

let insert t k ~weight v =
  let shard = shard_of t k in
  let e =
    { value = v;
      inserted_at = t.clock ();
      weight;
      last_access = Atomic.make (next_tick t) }
  in
  Mutex.lock shard.lock;
  let previous = Hashtbl.find_opt (Atomic.get shard.table) k in
  let installed =
    match previous with
    | Some (Pending _) ->
      (* A planning run for this key is in flight; it will publish its
         own (equivalent) result — racing it would orphan the waiters'
         slot. *)
      false
    | Some (Ready old) ->
      mutate shard (fun table -> Hashtbl.replace table k (Ready e));
      ignore (Atomic.fetch_and_add t.n_bytes (weight - old.weight));
      true
    | None ->
      mutate shard (fun table -> Hashtbl.replace table k (Ready e));
      Atomic.incr t.n_entries;
      ignore (Atomic.fetch_and_add t.n_bytes weight);
      true
  in
  Mutex.unlock shard.lock;
  if installed then evict_until_within_budget t;
  installed

(* --- whole-cache operations -------------------------------------------- *)

let iter t f =
  Array.iter
    (fun shard ->
      Hashtbl.iter
        (fun k slot -> match slot with Ready e -> f k e.value | Pending _ -> ())
        (Atomic.get shard.table))
    t.shards

let clear t =
  Array.iter
    (fun shard ->
      Mutex.lock shard.lock;
      Atomic.set shard.table (Hashtbl.create 8);
      Mutex.unlock shard.lock)
    t.shards;
  Atomic.set t.n_entries 0;
  Atomic.set t.n_bytes 0

let length t = Atomic.get t.n_entries
let bytes t = Atomic.get t.n_bytes

let stats t =
  { hits = Atomic.get t.c_hits;
    misses = Atomic.get t.c_misses;
    coalesced = Atomic.get t.c_coalesced;
    evictions = Atomic.get t.c_evictions;
    entries = Atomic.get t.n_entries;
    bytes = Atomic.get t.n_bytes }

let merge_stats a b =
  { hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    coalesced = a.coalesced + b.coalesced;
    evictions = a.evictions + b.evictions;
    entries = a.entries + b.entries;
    bytes = a.bytes + b.bytes }
