(** Sharded, coalescing, LRU-bounded cache for kernel plans.

    The concurrency substrate of {!Isaac}'s plan cache and the
    [isaac_serve] daemon. Three properties matter to its users:

    - {b Lock-free reads.} Keys hash onto 16 (configurable, rounded up
      to a power of two) shards; each shard publishes an immutable
      snapshot of its table through an [Atomic.t], so a cache hit is
      one atomic load plus a hash lookup — no mutex, safe from any
      number of domains. Writers (misses, evictions, inserts) serialize
      per shard on a mutex and publish a fresh snapshot.
    - {b Request coalescing.} N concurrent {!find_or_compute} misses on
      the same key run the computation exactly once: the first arrival
      plans, the others park on the in-flight slot and receive the
      identical value (reported as [Coalesced]). If the computation
      raises, waiters re-raise the same exception and the slot is
      removed so a later request can retry.
    - {b LRU eviction under a budget.} When [max_entries] and/or
      [max_bytes] (caller-estimated weights) are exceeded, the globally
      least-recently-used entry is evicted — exact LRU ordered by a
      global access tick, O(entries) scan per eviction (plans are
      hundreds of bytes and planning runs are milliseconds; the scan is
      noise). Evictions bump [<metrics_prefix>.evictions] in
      {!Obs.Telemetry} when a prefix was given.

    {b Clock caveat.} Entry timestamps come from the injectable [clock]
    (default [Unix.gettimeofday]) — {e wall} time, not a monotonic
    clock, so an NTP step can move it backwards. Served hit ages are
    therefore clamped at 0; a backwards step shows up as a burst of
    zero-age hits in the telemetry histogram, never as a negative age.
    Recency ordering for LRU does not use the clock at all (it uses a
    monotonic tick counter), so eviction order is immune to clock
    steps. *)

type ('k, 'v) t
(** A cache from structurally-compared keys ['k] to values ['v].
    Sharding uses the polymorphic [Hashtbl.hash], so keys must be
    hashable immutable data (the planner's input records are). *)

(** How a {!find_or_compute} request was served. *)
type outcome =
  | Hit        (** value was resident *)
  | Miss       (** this request ran the computation *)
  | Coalesced  (** parked on another request's in-flight computation *)

val outcome_name : outcome -> string
(** ["hit"], ["miss"], ["coalesced"] — the wire spelling used by the
    serving protocol. *)

(** Cumulative counters plus current occupancy. Counter reads are exact
    once writers are quiescent, monotonically catching-up while they
    race (same contract as {!Obs.Telemetry.Counter.value}). *)
type stats = {
  hits : int;
  misses : int;
  coalesced : int;
  evictions : int;
  entries : int;  (** resident entries (in-flight slots excluded) *)
  bytes : int;    (** sum of resident entry weights *)
}

val create :
  ?shards:int ->
  ?max_entries:int ->
  ?max_bytes:int ->
  ?clock:(unit -> float) ->
  ?metrics_prefix:string ->
  unit ->
  ('k, 'v) t
(** [shards] defaults to 16 and is rounded up to a power of two (use 1
    in tests that assert exact LRU order across all keys). Omitted
    budgets are unbounded. [clock] is injectable for age/eviction
    tests. [metrics_prefix] enables telemetry reporting of evictions
    under [<prefix>.evictions]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lock-free lookup; refreshes the entry's recency on hit. [None] for
    absent keys {e and} for keys whose computation is still in flight
    (use {!find_or_compute} to park on those). *)

val mem : ('k, 'v) t -> 'k -> bool
(** Lock-free; [true] only for resident (Ready) entries. Does not
    refresh recency. *)

val find_or_compute :
  ('k, 'v) t -> 'k -> weight:('v -> int) -> (unit -> 'v) -> 'v * outcome * float
(** [find_or_compute t k ~weight f] returns [(value, outcome, age_s)]:
    the cached value and its clamped-non-negative age on [Hit], or the
    just-computed value and age 0 on [Miss]/[Coalesced]. The
    computation runs with no cache locks held. [weight v] estimates the
    entry's resident size in bytes for the [max_bytes] budget. *)

val insert : ('k, 'v) t -> 'k -> weight:int -> 'v -> bool
(** Direct installation (plan-cache preloading from disk). Replaces a
    resident entry; returns [false] without installing when a
    computation for the key is in flight (the in-flight run will
    publish its own result). May trigger evictions. *)

val iter : ('k, 'v) t -> ('k -> 'v -> unit) -> unit
(** Iterate a snapshot of the resident entries (in-flight slots are
    skipped; entries inserted after the snapshot may be missed).
    Iteration order is unspecified. *)

val clear : ('k, 'v) t -> unit
(** Drop every resident entry. In-flight computations are untouched and
    re-install their results on completion. Occupancy counters are
    reset; not linearizable with respect to concurrent writers (callers
    quiesce first, as the CLI and tests do). *)

val length : ('k, 'v) t -> int
val bytes : ('k, 'v) t -> int

val stats : ('k, 'v) t -> stats

val merge_stats : stats -> stats -> stats
(** Field-wise sum — for reporting one number across the per-op caches. *)
