(** ISAAC: input-aware auto-tuning of compute-bound kernels.

    This is the public entry point of the reproduction, wiring together
    the paper's four components (Figure 1):
    + kernel generation — {!Codegen.Gemm} / {!Codegen.Conv};
    + data generation — {!Tuner.Dataset} (categorical generative model,
      §4);
    + regression analysis — {!Mlp} + {!Tuner.Profile} (log-featured MLP,
      §5);
    + runtime inference — {!Tuner.Search} (exhaustive search over tuning
      parameters with top-k device re-benchmarking, §6).

    Typical use:
    {[
      let rng = Util.Rng.create 42 in
      let engine = Isaac.tune rng Gpu.Device.p100 ~op:`Gemm () in
      let input = Codegen.Gemm_params.input 2560 16 2560 in
      let plan = Option.get (Isaac.plan_gemm engine input) in
      (* plan.config is the chosen kernel; on small problems you can run
         it for real under the PTX interpreter: *)
      let c = Isaac.gemm engine input ~a ~b
    ]} *)

module Plan_cache = Plan_cache
(** The sharded, coalescing, LRU-bounded cache the engine serves plans
    from — re-exported so servers and tests can reach its {!Plan_cache.stats}
    and {!Plan_cache.outcome} types. *)

type t
(** A tuned engine: device + trained profile + kernel-plan caches (one
    per op). Safe to share across domains: plan lookups are lock-free,
    concurrent misses on the same input coalesce onto one planning run,
    and the planning path itself has no shared mutable state. *)

(** The outcome of runtime inference for one input. *)
type plan = {
  config : Codegen.Gemm_params.config;   (** chosen tuning parameters *)
  measurement : Gpu.Executor.measurement; (** device re-benchmark result *)
  predicted_tflops : float;               (** the model's estimate *)
  n_legal : int;                           (** legal configs searched *)
  phases : (string * float) list;
  (** planning wall-clock per pipeline phase ([enumerate], [featurize],
      [inference], [argmax], [rebench]) as reported by
      {!Tuner.Search.result.phases}; empty for plans re-measured from a
      {!load_plans} cache file, which skip the search entirely. Shown by
      [isaac_query --timing]. *)
  kernel_hash : int64 option;
  (** {!Ptx.Encode.hash} of the generated kernel — the O(1) identity
      under which the plan cache dedups kernels across (op, shape)
      entries and the v3 artifact references its packed-kernel corpus.
      [None] when the kernel exceeds the fixed-width encoding fields
      (never for generated Table 4/5 kernels). *)
}

val tune :
  ?samples:int ->
  ?epochs:int ->
  ?arch:int array ->
  ?dtypes:Ptx.Types.dtype list ->
  ?noise:float ->
  ?domains:int ->
  ?checkpoint:string * int ->
  Util.Rng.t ->
  Gpu.Device.t ->
  op:[ `Gemm | `Conv ] ->
  unit ->
  t
(** Run the full auto-tuning pipeline: fit the generative model, benchmark
    [samples] random kernels (default 4000 scaled by REPRO_SCALE; the
    paper uses 50k–200k on real hardware), and train the regression MLP
    ([arch] defaults to {!Tuner.Profile.default_arch}). [domains > 1]
    parallelizes the benchmarking stage over OCaml 5 domains; it defaults
    to {!Util.Parallel.recommended_domains} — the same default as
    {!Tuner.Search} and the codegen entry points — so set
    [ISAAC_DOMAINS=1] (or pass [~domains:1]) when cross-machine bitwise
    reproducibility matters. Deterministic given the rng and the domain
    count. [checkpoint] is forwarded to
    {!Tuner.Dataset.generate_gemm}/[generate_conv] so a killed tuning run
    can resume its dataset generation where it left off. *)

val of_profile :
  ?cache_entries:int ->
  ?cache_bytes:int ->
  ?metrics_prefix:string ->
  Gpu.Device.t ->
  Tuner.Profile.t ->
  t
(** Wrap a previously saved profile. Raises [Invalid_argument] if the
    profile was tuned for a different device. [cache_entries] /
    [cache_bytes] bound each per-op plan cache (LRU eviction beyond
    them; unbounded by default — library users typically plan a handful
    of shapes, while the serving daemon passes explicit budgets).
    [metrics_prefix] (default ["plan"]) names the {!Obs.Telemetry}
    counter evictions are reported under ([<prefix>.evictions]). *)

val profile : t -> Tuner.Profile.t
val device : t -> Gpu.Device.t

val plan_gemm :
  ?top_k:int ->
  ?engine:Tuner.Search.engine ->
  t ->
  Codegen.Gemm_params.input ->
  plan option
(** Runtime inference for a GEMM input. Results are cached per input, so
    repeated calls are free (the paper's filesystem cache). [engine]
    selects the {!Tuner.Search} scoring engine (default [`Batched]); the
    [`Scalar] reference chooses the identical config, only slower, so
    the plan cache may safely mix engines.

    Concurrency-safe: lookups are lock-free, and N domains racing a
    cold input trigger exactly one search (the rest park on it and
    receive the identical plan). The search's measurement noise is
    seeded from the (op, input) pair, so a plan is a deterministic
    function of (profile, device, input) — independent of request
    order and domain count. *)

val plan_conv :
  ?top_k:int ->
  ?engine:Tuner.Search.engine ->
  t ->
  Codegen.Conv_params.input ->
  plan option

val plan_gemm_with_status :
  ?top_k:int ->
  ?engine:Tuner.Search.engine ->
  t ->
  Codegen.Gemm_params.input ->
  plan option * Plan_cache.outcome
(** {!plan_gemm} plus how the cache served it ([Hit]/[Miss]/[Coalesced])
    — the serving daemon reports this on the wire. *)

val plan_conv_with_status :
  ?top_k:int ->
  ?engine:Tuner.Search.engine ->
  t ->
  Codegen.Conv_params.input ->
  plan option * Plan_cache.outcome

val cache_stats : t -> Plan_cache.stats
(** Merged counters of the GEMM and CONV plan caches. Cache-hit ages
    reported to telemetry ([plan.cache_hit_age_s]) are clamped at 0:
    entry timestamps are wall clock ([Unix.gettimeofday], the process
    has no monotonic-clock dependency), so an NTP step backwards
    surfaces as zero-age hits rather than negative ages. *)

val gemm :
  t -> Codegen.Gemm_params.input -> a:float array -> b:float array -> float array
(** Plan, generate the kernel, and execute it under the PTX interpreter.
    Intended for examples/tests on small problems — the interpreter is a
    functional simulator, not a fast CPU BLAS. Raises [Failure] if
    planning fails. *)

val conv :
  t -> Codegen.Conv_params.input -> image:float array -> filter:float array ->
  float array

val explain_gemm : t -> Codegen.Gemm_params.input -> string
(** A human-readable §8.1-style analysis of the planned kernel for this
    input: the chosen parameters, the timing model's introspection
    (occupancy, residency, L2 hit rate, bound resource, pipeline time
    breakdown), the measured register pressure of the generated code, an
    energy estimate, and a comparison against the cuBLAS-like baseline's
    pick. Raises [Failure] if no kernel is legal. *)

val explain_conv : t -> Codegen.Conv_params.input -> string
(** Same against the cuDNN-like baseline. *)

val save_plans : t -> string -> unit
(** Persist the kernel-plan cache to disk — §6: inferred kernels may be
    "cached on the filesystem" so later runs skip the search. Written
    through {!Util.Artifact.write} (kind ["isaac-plans"], version 3):
    atomic and checksummed, so a crash mid-save leaves the previous
    cache intact. Each plan line carries the kernel's {!Ptx.Encode}
    hash, and the packed kernels themselves — deduplicated across
    (op, shape) entries by that hash — are written to a sibling binary
    corpus at [path ^ ".kernels"] ({!Ptx.Encode.save_corpus}), keeping
    the plans file greppable text while the kernel payload ships in the
    dense wire format (several times smaller than kernel source). *)

val load_plans : t -> string -> (int * int, string) result
(** Pre-seed the plan cache from a file written by {!save_plans}: each
    cached configuration is re-benchmarked once on the device (no model
    search) using a dedicated RNG, so loading never perturbs subsequent
    [plan_*] searches. The whole file is validated (checksum) and parsed
    before any cache mutation — a corrupt file returns [Error] and
    leaves the cache untouched. Individual malformed lines and entries
    whose configuration is no longer legal are skipped rather than
    aborting the load — counted in the [plans.skipped_lines] metric
    {e and} returned to the caller, so a partially-stale file is
    detectable without scraping metrics.
    Version 2 caches (no kernel hashes) still load. When the sibling
    packed-kernel corpus exists, every referenced hash must resolve to a
    hash-verified corpus entry; stale references are skipped (counted in
    [plans.kernel_unresolved]), and an unreadable corpus is ignored with
    a warning ([plans.corpus_load_failures]) since the plan lines are
    authoritative. [Ok (installed, skipped)] is the number of plans
    installed and the number of lines dropped. *)

val clear_cache : t -> unit
