module Plan_cache = Plan_cache
module GP = Codegen.Gemm_params
module CP = Codegen.Conv_params

type plan = {
  config : GP.config;
  measurement : Gpu.Executor.measurement;
  predicted_tflops : float;
  n_legal : int;
  phases : (string * float) list;
  kernel_hash : int64 option;
}

(* Resident size estimate for the cache's byte budget: the config, the
   measurement (with its nested report), the phase list and the boxing
   around them. Precision is irrelevant — this is a budget knob, not an
   allocator. *)
let plan_weight = function
  | None -> 64
  | Some p -> 512 + (32 * List.length p.phases)

type t = {
  profile : Tuner.Profile.t;
  device : Gpu.Device.t;
  rng : Util.Rng.t;
  (* Re-measuring loaded plans draws from its own generator: if it shared
     [rng], merely loading a plan cache would perturb every subsequent
     [plan_*] search, making planning results depend on load order. *)
  load_rng : Util.Rng.t;
  (* Sharded, coalescing, LRU-bounded caches (entry timestamps live
     inside, so serving telemetry can histogram the age of plans being
     served for stale-cache detection). *)
  gemm_cache : (GP.input, plan option) Plan_cache.t;
  conv_cache : (CP.input, plan option) Plan_cache.t;
}

let src = Logs.Src.create "isaac" ~doc:"ISAAC auto-tuner"

module Log = (val Logs.src_log src : Logs.LOG)

(* Serving telemetry handles (cumulative, distinct from the trace-scoped
   Metrics counters used alongside them). *)
let t_cache_hit = Obs.Telemetry.counter "plan.cache_hit"
let t_cache_miss = Obs.Telemetry.counter "plan.cache_miss"
let t_coalesced = Obs.Telemetry.counter "plan.coalesced"
let t_plan_latency = Obs.Telemetry.histo "plan.latency_s"
let t_hit_age = Obs.Telemetry.histo "plan.cache_hit_age_s"

let observe_latency ~t0 =
  Obs.Telemetry.Histo.observe t_plan_latency
    (Float.max 0.0 (Unix.gettimeofday () -. t0))

(* [age_s] is already clamped non-negative by the cache (its timestamps
   are wall clock, which NTP can step backwards). *)
let record_plan_hit ~t0 ~age_s =
  Obs.Metrics.incr "plan.cache_hit";
  if Obs.Telemetry.enabled () then begin
    Obs.Telemetry.Counter.incr t_cache_hit;
    Obs.Telemetry.Histo.observe t_hit_age age_s;
    observe_latency ~t0
  end

let record_plan_miss ~t0 =
  Obs.Metrics.incr "plan.cache_miss";
  if Obs.Telemetry.enabled () then begin
    Obs.Telemetry.Counter.incr t_cache_miss;
    observe_latency ~t0
  end

let record_plan_coalesced ~t0 =
  Obs.Metrics.incr "plan.coalesced";
  if Obs.Telemetry.enabled () then begin
    Obs.Telemetry.Counter.incr t_coalesced;
    observe_latency ~t0
  end

let record_outcome ~t0 ~age_s = function
  | Plan_cache.Hit -> record_plan_hit ~t0 ~age_s
  | Plan_cache.Miss -> record_plan_miss ~t0
  | Plan_cache.Coalesced -> record_plan_coalesced ~t0

let of_profile ?cache_entries ?cache_bytes ?(metrics_prefix = "plan") device
    (profile : Tuner.Profile.t) =
  if profile.device <> device.Gpu.Device.name then
    invalid_arg
      (Printf.sprintf "Isaac.of_profile: profile tuned on %s, device is %s"
         profile.device device.Gpu.Device.name);
  { profile; device;
    rng = Util.Rng.create 0x15aac;
    load_rng = Util.Rng.create 0x10ad5;
    gemm_cache =
      Plan_cache.create ?max_entries:cache_entries ?max_bytes:cache_bytes
        ~metrics_prefix ();
    conv_cache =
      Plan_cache.create ?max_entries:cache_entries ?max_bytes:cache_bytes
        ~metrics_prefix () }

let tune ?samples ?(epochs = 20) ?arch ?dtypes ?(noise = Gpu.Executor.default_noise)
    ?domains ?checkpoint rng device ~op () =
  let samples =
    match samples with Some s -> s | None -> Util.Env_config.scaled 4000
  in
  let domains =
    match domains with
    | Some d -> d
    | None -> Util.Parallel.recommended_domains ()
  in
  let op_name = match op with `Gemm -> "gemm" | `Conv -> "conv" in
  Obs.Span.with_ "tune"
    ~meta:(fun () ->
      [ ("op", Obs.Json.String op_name);
        ("device", Obs.Json.String device.Gpu.Device.name);
        ("samples", Obs.Json.Int samples);
        ("epochs", Obs.Json.Int epochs) ])
    (fun () ->
      Obs.Telemetry.incr "tune.runs";
      Log.info (fun m ->
          m "tuning %s on %s: %d samples, %d domains"
            (match op with `Gemm -> "GEMM" | `Conv -> "CONV")
            device.Gpu.Device.name samples domains);
      let dataset =
        Obs.Span.with_ "tune.dataset" (fun () ->
            match op with
            | `Gemm ->
              Tuner.Dataset.generate_gemm ~domains ?dtypes ~noise ?checkpoint
                rng device ~n:samples
            | `Conv ->
              Tuner.Dataset.generate_conv ~domains ?dtypes ~noise ?checkpoint
                rng device ~n:samples)
      in
      let profile =
        Obs.Span.with_ "tune.train" (fun () ->
            Tuner.Profile.train ?arch ~epochs rng dataset)
      in
      of_profile device profile)

let profile t = t.profile
let device t = t.device

(* The packed-encoding hash is the plan's kernel identity: O(1) equality
   for the serving cache and the dedup key of the v3 artifact's kernel
   corpus. Kernels are register-allocated before encoding — the packed
   format's fixed-width register fields assume physical numbering, and
   the canonical form also dedups kernels that differ only in virtual
   register names. Computed once per cache miss; encoding failures (a
   kernel outgrowing the fixed-width fields even post-allocation)
   degrade to [None] rather than failing the plan. *)
let encode_kernel generate input config =
  match Ptx.Encode.encode (Ptx.Regalloc.allocate (generate input config)) with
  | Ok e -> Some e
  | Error _ -> None

let hash_of_config generate input config =
  Option.map Ptx.Encode.hash (encode_kernel generate input config)

let plan_of_result ~kernel_hash (r : Tuner.Search.result) =
  let predicted =
    if Array.length r.candidates > 0 then r.candidates.(0).predicted_tflops
    else r.best_measurement.tflops
  in
  { config = r.best;
    measurement = r.best_measurement;
    predicted_tflops = predicted;
    n_legal = r.n_legal;
    phases = r.phases;
    kernel_hash }

(* Each planning run draws its measurement noise from a generator
   seeded by the (op, input) pair rather than from a shared mutable
   stream. Two properties follow, and both matter now that plans are
   served concurrently:
   - the search is free of shared mutable state, so racing requests for
     different inputs cannot corrupt each other's noise draws (the
     profile, device and enumerator are all read-only);
   - a plan is a deterministic function of (profile, device, input) —
     independent of the order requests arrive in, of how many plans
     were served before, and of how many domains are hammering the
     cache. The daemon's warm-vs-cold bit-identity check and the
     multi-domain hammer test both pin this. *)
let plan_seed_base = 0x15aac

let request_rng tag input =
  Util.Rng.create (plan_seed_base lxor Hashtbl.hash (tag, input))

let plan_gemm_with_status ?top_k ?engine t (i : GP.input) =
  Obs.Span.with_request (fun () ->
      let t0 = if Obs.Telemetry.enabled () then Unix.gettimeofday () else 0.0 in
      let plan, outcome, age_s =
        Plan_cache.find_or_compute t.gemm_cache i ~weight:plan_weight
          (fun () ->
            let result =
              Obs.Span.with_ "plan"
                ~meta:(fun () -> [ ("op", Obs.Json.String "gemm") ])
                (fun () ->
                  Tuner.Search.exhaustive_gemm ?top_k ?engine
                    (request_rng "gemm" i) t.device ~profile:t.profile i)
            in
            Option.map
              (fun r ->
                let kernel_hash =
                  hash_of_config Codegen.Gemm.generate i r.Tuner.Search.best
                in
                plan_of_result ~kernel_hash r)
              result)
      in
      record_outcome ~t0 ~age_s outcome;
      (plan, outcome))

let plan_gemm ?top_k ?engine t i = fst (plan_gemm_with_status ?top_k ?engine t i)

let plan_conv_with_status ?top_k ?engine t (i : CP.input) =
  Obs.Span.with_request (fun () ->
      let t0 = if Obs.Telemetry.enabled () then Unix.gettimeofday () else 0.0 in
      let plan, outcome, age_s =
        Plan_cache.find_or_compute t.conv_cache i ~weight:plan_weight
          (fun () ->
            let result =
              Obs.Span.with_ "plan"
                ~meta:(fun () -> [ ("op", Obs.Json.String "conv") ])
                (fun () ->
                  Tuner.Search.exhaustive_conv ?top_k ?engine
                    (request_rng "conv" i) t.device ~profile:t.profile i)
            in
            Option.map
              (fun r ->
                let kernel_hash =
                  hash_of_config Codegen.Conv.generate i r.Tuner.Search.best
                in
                plan_of_result ~kernel_hash r)
              result)
      in
      record_outcome ~t0 ~age_s outcome;
      (plan, outcome))

let plan_conv ?top_k ?engine t i = fst (plan_conv_with_status ?top_k ?engine t i)

let cache_stats t =
  Plan_cache.merge_stats
    (Plan_cache.stats t.gemm_cache)
    (Plan_cache.stats t.conv_cache)

let gemm t i ~a ~b =
  match plan_gemm t i with
  | None -> failwith "Isaac.gemm: no legal kernel for this input"
  | Some plan -> Codegen.Gemm.run i plan.config ~a ~b

let conv t i ~image ~filter =
  match plan_conv t i with
  | None -> failwith "Isaac.conv: no legal kernel for this input"
  | Some plan -> Codegen.Conv.run i plan.config ~image ~filter

let describe_report device (c : Gpu.Kernel_cost.t) (r : Gpu.Perf_model.report) =
  [ [| "TFLOPS"; Printf.sprintf "%.2f" r.tflops |];
    [| "bound by"; Gpu.Perf_model.bound_name r.bound |];
    [| "occupancy"; Printf.sprintf "%.0f%% (%d warps/SM, %d blocks/SM)"
         (100.0 *. r.occupancy) r.warps_per_sm r.blocks_per_sm |];
    [| "L2 hit rate"; Printf.sprintf "%.0f%%" (100.0 *. r.l2_hit_rate) |];
    [| "effective DRAM"; Printf.sprintf "%.0f GB/s" r.effective_dram_gbs |];
    [| "time split (arith/mem/shared)";
       Printf.sprintf "%.1f / %.1f / %.1f us" (r.arith_seconds *. 1e6)
         (r.mem_seconds *. 1e6) (r.shared_seconds *. 1e6) |];
    [| "threads/block"; string_of_int c.threads_per_block |];
    [| "shared memory"; Printf.sprintf "%.1f KB" (float_of_int c.shared_bytes /. 1024.) |];
    [| "regs/thread (estimate)"; string_of_int c.regs_per_thread |];
    [| "board power"; Printf.sprintf "%.0f W" (Gpu.Power.board_watts device r) |];
    [| "efficiency"; Printf.sprintf "%.1f GFLOPS/W" (Gpu.Power.gflops_per_watt device r) |] ]

let explain ~plan ~cost_of ~baseline_pick ~program t describe_input =
  match plan with
  | None -> failwith "Isaac.explain: no legal kernel for this input"
  | Some (plan : plan) ->
    let buf = Buffer.create 2048 in
    Buffer.add_string buf (describe_input ^ "\n");
    let cost = cost_of plan.config in
    let report =
      match Gpu.Perf_model.predict t.device cost with
      | Some r -> r
      | None -> failwith "Isaac.explain: planned kernel no longer legal"
    in
    Buffer.add_string buf
      (Printf.sprintf "\nISAAC chose %s (searched %d legal kernels, predicted %.2f TFLOPS):\n"
         (GP.describe plan.config) plan.n_legal plan.predicted_tflops);
    Buffer.add_string buf
      (Util.Table.render ~header:[| "metric"; "value" |]
         (describe_report t.device cost report));
    (* Measured register pressure of the actual generated code. *)
    let pressure = Ptx.Regalloc.pressure (program plan.config) in
    Buffer.add_string buf
      (Printf.sprintf
         "\nregister pressure of generated code: %d float + %d int + %d predicate\n"
         pressure.fregs pressure.iregs pressure.pregs);
    (match baseline_pick with
     | Some (bc, (bm : Gpu.Executor.measurement)) ->
       Buffer.add_string buf
         (Printf.sprintf "\nvendor-like baseline picks %s -> %.2f TFLOPS (ISAAC %.2fx)\n"
            (GP.describe bc) bm.tflops
            (plan.measurement.tflops /. bm.tflops))
     | None -> Buffer.add_string buf "\nvendor-like baseline: no legal kernel\n");
    Buffer.contents buf

let explain_gemm t (i : GP.input) =
  let rng = Util.Rng.copy t.rng in
  explain t
    ~plan:(plan_gemm t i)
    ~cost_of:(fun c -> GP.cost i c)
    ~baseline_pick:(Baselines.Cublas.heuristic rng t.device i)
    ~program:(fun c -> Codegen.Gemm.generate i c)
    (Printf.sprintf "GEMM %dx%dx%d %c%c (%s) on %s" i.m i.n i.k
       (if i.a_trans then 'T' else 'N')
       (if i.b_trans then 'T' else 'N')
       (Ptx.Types.dtype_name i.dtype) t.device.Gpu.Device.name)

let explain_conv t (i : CP.input) =
  let rng = Util.Rng.copy t.rng in
  explain t
    ~plan:(plan_conv t i)
    ~cost_of:(fun c -> CP.cost i c)
    ~baseline_pick:(Baselines.Cudnn.heuristic rng t.device i)
    ~program:(fun c -> Codegen.Conv.generate i c)
    (Printf.sprintf "CONV N=%d C=%d K=%d P=%d Q=%d R=%d S=%d (%s) on %s" i.n i.c i.k
       i.p i.q i.r i.s (Ptx.Types.dtype_name i.dtype) t.device.Gpu.Device.name)

(* --- filesystem plan cache (paper §6) ---------------------------------- *)

let dtype_tag : Ptx.Types.dtype -> string = function
  | F16 -> "f16"
  | F32 -> "f32"
  | F64 -> "f64"

let dtype_of_tag = function
  | "f16" -> Some Ptx.Types.F16
  | "f32" -> Some Ptx.Types.F32
  | "f64" -> Some Ptx.Types.F64
  | _ -> None

let config_fields (c : GP.config) =
  String.concat " "
    (List.map string_of_int (Array.to_list (GP.config_to_array c)))

(* Artifact version 1 was the pre-checksum "isaac-plans v1" text file;
   version 2 is the same line format inside a checksummed
   {!Util.Artifact} envelope, with the device recorded on the first
   payload line (and actually validated on load). Version 3 appends
   [@ <hash>] — the {!Ptx.Encode} kernel identity — to each plan line
   and writes the deduplicated packed kernels to a sibling corpus
   ([path ^ ".kernels"], kind {!Ptx.Encode.corpus_kind}): the plans file
   stays human-greppable text while the kernels ship as dense binaries,
   deduplicated across (op, shape) entries that lower to the same code. *)
let plans_kind = "isaac-plans"
let plans_version = 3

let corpus_path path = path ^ ".kernels"

let save_plans t path =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "device %s\n" t.device.Gpu.Device.name);
  (* Collected in cache-iteration order; [Encode.save_corpus] dedups by
     hash, so shapes sharing a kernel cost one corpus entry. *)
  let kernels = ref [] in
  let pack generate input config =
    match encode_kernel generate input config with
    | Some e ->
      kernels := e :: !kernels;
      Printf.sprintf " @ %s" (Ptx.Encode.hash_hex (Ptx.Encode.hash e))
    | None -> ""
  in
  Plan_cache.iter t.gemm_cache (fun (i : GP.input) plan ->
      match plan with
      | Some p ->
        Buffer.add_string buf
          (Printf.sprintf "gemm %d %d %d %s %b %b : %s%s\n" i.m i.n i.k
             (dtype_tag i.dtype) i.a_trans i.b_trans (config_fields p.config)
             (pack Codegen.Gemm.generate i p.config))
      | None -> ());
  Plan_cache.iter t.conv_cache (fun (i : CP.input) plan ->
      match plan with
      | Some p ->
        Buffer.add_string buf
          (Printf.sprintf "conv %d %d %d %d %d %d %d %d %d %s : %s%s\n" i.n
             i.c i.k i.p i.q i.r i.s i.stride i.pad (dtype_tag i.dtype)
             (config_fields p.config)
             (pack Codegen.Conv.generate i p.config))
      | None -> ());
  Ptx.Encode.save_corpus ~path:(corpus_path path) (List.rev !kernels);
  Util.Artifact.write ~path ~kind:plans_kind ~version:plans_version
    (Buffer.contents buf)

let plan_of_config t ~kernel_hash cost config =
  match Gpu.Executor.measure_best_of t.load_rng t.device cost with
  | None -> None
  | Some m ->
    Some
      { config; measurement = m; predicted_tflops = m.tflops; n_legal = 0;
        phases = []; kernel_hash }

type plan_entry =
  | Gemm_entry of GP.input * GP.config * int64 option
  | Conv_entry of CP.input * GP.config * int64 option

(* One plan line -> entry, [None] on any malformed field. Pure parsing:
   no cache mutation, no measurement. The v3 [@ <hash>] kernel-identity
   suffix is optional so v2 caches still load; a malformed hash rejects
   the line like any other bad field. *)
let parse_plan_line line =
  match String.index_opt line ':' with
  | None -> None
  | Some colon -> (
    let head =
      String.split_on_char ' ' (String.trim (String.sub line 0 colon))
      |> List.filter (( <> ) "")
    in
    let tail =
      String.sub line (colon + 1) (String.length line - colon - 1)
      |> String.trim |> String.split_on_char ' '
      |> List.filter (( <> ) "")
    in
    let cfg_part, hash_part =
      let rec split acc = function
        | "@" :: rest -> Some (List.rev acc, rest)
        | x :: rest -> split (x :: acc) rest
        | [] -> None
      in
      match split [] tail with
      | Some (cfg, [ h ]) -> (cfg, Some h)
      | Some _ -> ([], Some "malformed")  (* forces rejection below *)
      | None -> (tail, None)
    in
    let hash =
      match hash_part with
      | None -> Ok None
      | Some h -> (
        match Int64.of_string_opt ("0x" ^ h) with
        | Some v when String.length h = 16 -> Ok (Some v)
        | _ -> Error ())
    in
    match hash with
    | Error () -> None
    | Ok hash -> (
    match
      cfg_part |> List.map int_of_string |> Array.of_list |> GP.config_of_array
    with
    | exception _ -> None
    | cfg -> (
      match head with
      | [ "gemm"; m; n; k; dt; at; bt ] -> (
        match (dtype_of_tag dt, bool_of_string_opt at, bool_of_string_opt bt) with
        | Some dtype, Some a_trans, Some b_trans -> (
          match
            GP.input ~dtype ~a_trans ~b_trans (int_of_string m)
              (int_of_string n) (int_of_string k)
          with
          | input -> Some (Gemm_entry (input, cfg, hash))
          | exception _ -> None)
        | _ -> None)
      | [ "conv"; n; c; k; p; q; r; s; stride; pad; dt ] -> (
        match dtype_of_tag dt with
        | None -> None
        | Some dtype -> (
          match
            CP.input ~dtype ~stride:(int_of_string stride)
              ~pad:(int_of_string pad) ~n:(int_of_string n)
              ~c:(int_of_string c) ~k:(int_of_string k) ~p:(int_of_string p)
              ~q:(int_of_string q) ~r:(int_of_string r) ~s:(int_of_string s)
              ()
          with
          | input -> Some (Conv_entry (input, cfg, hash))
          | exception _ -> None))
      | _ -> None)))

let load_plans t path =
  match
    Util.Artifact.read ~path ~kind:plans_kind ~max_version:plans_version
  with
  | Error e ->
    let msg = Util.Artifact.error_to_string ~path e in
    (* Under telemetry, annotate the failure report with the flight
       recorder's recent-event context (which requests were in flight
       when the artifact turned out bad). *)
    let flight =
      if Obs.Telemetry.enabled () then begin
        Obs.Telemetry.incr "plans.load_failures";
        Obs.Telemetry.Flight.record ~kind:"artifact.error" ~name:path msg;
        match Obs.Telemetry.Flight.dump () with "" -> "" | d -> "\n" ^ d
      end
      else ""
    in
    Error (msg ^ flight)
  | Ok (_, payload) -> (
    match String.split_on_char '\n' payload with
    | [] -> Error (path ^ ": empty plan cache payload")
    | device_line :: rest ->
      if device_line <> "device " ^ t.device.Gpu.Device.name then
        Error
          (Printf.sprintf "%s: plan cache is for %S, engine device is %S" path
             device_line t.device.Gpu.Device.name)
      else begin
        (* Parse the whole payload first, then install: a bad line cannot
           leave the cache half-populated. Malformed lines are skipped
           with a warning rather than aborting the load. *)
        let entries = ref [] and skipped = ref 0 in
        List.iteri
          (fun lineno line ->
            if String.trim line <> "" then
              match parse_plan_line line with
              | Some e -> entries := e :: !entries
              | None ->
                incr skipped;
                Obs.Metrics.incr "plans.skipped_lines";
                Log.warn (fun m ->
                    m "%s:%d: skipping malformed plan line" path (lineno + 2)))
          rest;
        let entries = List.rev !entries in
        (* The packed-kernel companion is advisory: plan lines are
           authoritative, but when the corpus is present every referenced
           hash must resolve to a (hash-verified) packed kernel, and a
           stale reference is skipped rather than served. A missing
           corpus (v2 caches, or a copied-without-sibling file) loads
           with hashes taken on faith from the plan lines. *)
        let corpus_hashes =
          let cpath = corpus_path path in
          if not (Sys.file_exists cpath) then None
          else
            match Ptx.Encode.load_corpus ~path:cpath with
            | Ok kernels ->
              let set = Hashtbl.create 16 in
              List.iter
                (fun k -> Hashtbl.replace set (Ptx.Encode.hash k) ())
                kernels;
              Some set
            | Error e ->
              Obs.Metrics.incr "plans.corpus_load_failures";
              Log.warn (fun m ->
                  m "%s: ignoring unreadable kernel corpus (%s)" cpath e);
              None
        in
        let resolves hash =
          match (hash, corpus_hashes) with
          | Some h, Some set ->
            let ok = Hashtbl.mem set h in
            if not ok then begin
              Obs.Metrics.incr "plans.kernel_unresolved";
              Log.warn (fun m ->
                  m "%s: plan references kernel %s absent from corpus; \
                     skipping" path (Ptx.Encode.hash_hex h))
            end;
            ok
          | _ -> true
        in
        let installed = ref 0 in
        List.iter
          (fun entry ->
            match entry with
            | Gemm_entry (input, cfg, hash) ->
              if GP.structurally_legal input cfg && resolves hash then begin
                let plan =
                  plan_of_config t ~kernel_hash:hash (GP.cost input cfg) cfg
                in
                if
                  Plan_cache.insert t.gemm_cache input
                    ~weight:(plan_weight plan) plan
                then incr installed
              end
              else incr skipped
            | Conv_entry (input, cfg, hash) ->
              if CP.structurally_legal input cfg && resolves hash then begin
                let plan =
                  plan_of_config t ~kernel_hash:hash (CP.cost input cfg) cfg
                in
                if
                  Plan_cache.insert t.conv_cache input
                    ~weight:(plan_weight plan) plan
                then incr installed
              end
              else incr skipped)
          entries;
        Ok (!installed, !skipped)
      end)

let clear_cache t =
  Plan_cache.clear t.gemm_cache;
  Plan_cache.clear t.conv_cache
