(* Whole-network benchmark (beyond the paper's per-kernel evaluation):
   aggregate ISAAC's per-layer gains over the layer stacks of AlexNet, a
   ResNet-50 excerpt, and a DeepBench-style LSTM, against the vendor-like
   baselines. This is the deployment story the paper's introduction
   motivates: a library that is fast on *your* layer shapes, not just on
   square matrices. *)

module NW = Workloads.Networks

let layer_times device rng (layer : NW.layer) =
  match layer with
  | NW.Gemm input ->
    let engine = Engines.gemm device in
    let isaac =
      match Isaac.plan_gemm engine input with
      | Some plan -> plan.measurement.seconds
      | None -> Float.nan
    in
    let baseline =
      match Baselines.Cublas.heuristic rng device input with
      | Some (_, m) -> m.seconds
      | None -> Float.nan
    in
    (isaac, baseline)
  | NW.Conv input ->
    let engine = Engines.conv device in
    let isaac =
      match Isaac.plan_conv engine input with
      | Some plan -> plan.measurement.seconds
      | None -> Float.nan
    in
    let baseline =
      match Baselines.Cudnn.heuristic rng device input with
      | Some (_, m) -> m.seconds
      | None -> Float.nan
    in
    (isaac, baseline)

let run_network device rng (net : NW.network) =
  Printf.printf "\n%s on %s:\n" net.name device.Gpu.Device.name;
  let totals = ref (0.0, 0.0) in
  Util.Table.print
    ~header:[| "layer"; "gflops"; "ISAAC (us)"; "baseline (us)"; "speedup" |]
    (List.map
       (fun (label, layer) ->
         let isaac, base = layer_times device rng layer in
         let ti, tb = !totals in
         totals := (ti +. isaac, tb +. base);
         [| label;
            Printf.sprintf "%.2f" (NW.flops layer /. 1e9);
            Printf.sprintf "%.1f" (isaac *. 1e6);
            Printf.sprintf "%.1f" (base *. 1e6);
            Printf.sprintf "%.2fx" (base /. isaac) |])
       net.layers);
  let ti, tb = !totals in
  Printf.printf "  end-to-end: ISAAC %.2f ms vs baseline %.2f ms -> %.2fx\n" (ti *. 1e3)
    (tb *. 1e3) (tb /. ti);
  (net.name, tb /. ti)

let run () =
  Reporting.print_header
    "Networks: end-to-end layer stacks (AlexNet / ResNet-50 excerpt / LSTM)";
  let device = Gpu.Device.p100 in
  let rng = Engines.fresh_rng "networks" in
  let results =
    List.map (run_network device rng) (NW.all Ptx.Types.F32)
  in
  Reporting.save_csv "networks_end_to_end"
    ~header:[ "speedup" ]
    (List.map (fun (_, s) -> [| s |]) results);
  List.map
    (fun (name, speedup) ->
      Reporting.check_min
        ~claim:(Printf.sprintf "%s end-to-end speedup" name)
        ~paper:"per-layer gains compound" ~value:speedup ~at_least:1.0)
    results
