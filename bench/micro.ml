(* Bechamel micro-benchmarks: one Test.make per reproduced table/figure,
   measuring the core inner operation that experiment exercises. These
   quantify the practicality claims of the paper on our substrate — e.g.
   §6's "up to a million configurations per second can be evaluated". *)

open Bechamel
open Toolkit
module GP = Codegen.Gemm_params

let linpack = GP.input ~b_trans:true 2048 2048 2048
let linpack_cfg =
  { GP.ms = 8; ns = 8; ks = 1; ml = 64; nl = 64; u = 8; kl = 1; kg = 1; vec = 4;
    db = 2 }

let conv_input =
  Codegen.Conv_params.input ~n:16 ~c:512 ~k:48 ~p:14 ~q:14 ~r:5 ~s:5 ()

let tests () =
  let rng = Util.Rng.create 99 in
  let sampler = Tuner.Dataset.fit_gemm_sampler ~warmup:2000 rng Gpu.Device.p100 in
  let net = Mlp.Network.create rng ~sizes:[| Tuner.Features.dim; 32; 64; 32; 1 |] in
  let feats =
    Tuner.Features.gemm_features ~log:true linpack (GP.config_to_array linpack_cfg)
  in
  let batch =
    let n = 256 in
    let x = Mlp.Tensor.create n Tuner.Features.dim in
    for i = 0 to n - 1 do
      Array.blit feats 0 x.Mlp.Tensor.data (i * Tuner.Features.dim)
        Tuner.Features.dim
    done;
    x
  in
  let small = GP.input 32 32 32 in
  let small_cfg =
    { GP.ms = 2; ns = 2; ks = 1; ml = 16; nl = 16; u = 8; kl = 1; kg = 1; vec = 1;
      db = 1 }
  in
  let a = Array.init (32 * 32) (fun _ -> Util.Rng.uniform rng) in
  let b = Array.init (32 * 32) (fun _ -> Util.Rng.uniform rng) in
  [ Test.make ~name:"table1: categorical sample"
      (Staged.stage (fun () -> ignore (Tuner.Sampler.sample rng sampler)));
    Test.make ~name:"table2: MLP inference (1 config)"
      (Staged.stage (fun () -> ignore (Mlp.Network.predict_one net feats)));
    Test.make ~name:"fig5: MLP inference (batch 256)"
      (Staged.stage (fun () -> ignore (Mlp.Network.predict net batch)));
    Test.make ~name:"table3: occupancy calculation"
      (Staged.stage (fun () ->
           ignore
             (Gpu.Occupancy.calc Gpu.Device.p100
                { regs_per_thread = 72; shared_bytes = 12544; threads_per_block = 128 })));
    Test.make ~name:"fig6-8: GEMM cost + timing model"
      (Staged.stage (fun () ->
           ignore (Gpu.Perf_model.predict Gpu.Device.p100 (GP.cost linpack linpack_cfg))));
    Test.make ~name:"fig9-11: CONV cost + timing model"
      (Staged.stage (fun () ->
           ignore
             (Gpu.Perf_model.predict Gpu.Device.p100
                (Codegen.Conv_params.cost conv_input linpack_cfg))));
    Test.make ~name:"table6: legality check"
      (Staged.stage (fun () -> ignore (GP.structurally_legal linpack linpack_cfg)));
    Test.make ~name:"sec8.1: executor measurement"
      (Staged.stage (fun () ->
           ignore (Gpu.Executor.measure rng Gpu.Device.p100 (GP.cost linpack linpack_cfg))));
    Test.make ~name:"sec8.3: PTX generation (64x64 kernel)"
      (Staged.stage (fun () -> ignore (Codegen.Gemm.generate linpack linpack_cfg)));
    Test.make ~name:"sec4.2: interpreter 32^3 GEMM"
      (Staged.stage (fun () -> ignore (Codegen.Gemm.run small small_cfg ~a ~b)));
    (let program = Codegen.Gemm.generate linpack linpack_cfg in
     Test.make ~name:"regalloc: liveness + linear scan"
       (Staged.stage (fun () -> ignore (Ptx.Regalloc.allocate program))));
    (let spec = Frontend.Einsum.parse "mk,kn->mn" in
     Test.make ~name:"frontend: einsum parse + classify"
       (Staged.stage (fun () -> ignore (Frontend.Einsum.parse "bmk,bkn->bmn") |> fun () -> ignore spec))) ]

let run () =
  Reporting.print_header "Bechamel micro-benchmarks (one per experiment)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"isaac" (tests ()))
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> t
        | _ -> Float.nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort compare !rows in
  Util.Table.print
    ~header:[| "micro-benchmark"; "ns/op"; "ops/s" |]
    (List.map
       (fun (name, ns) ->
         [| name; Printf.sprintf "%.0f" ns;
            Printf.sprintf "%.3g" (1e9 /. Float.max 1.0 ns) |])
       rows);
  (* §6 claim: "up to a million different configurations per second can be
     evaluated" — configurations scored per second through the batch path. *)
  match
    List.find_opt (fun (name, _) -> String.ends_with ~suffix:"(batch 256)" name) rows
  with
  | Some (_, ns) when ns > 0.0 && not (Float.is_nan ns) ->
    let configs_per_s = 256.0 /. (ns /. 1e9) in
    Printf.printf "\nExhaustive-search scoring rate: %.3g configs/s (paper: ~1e6/s)\n"
      configs_per_s;
    [ Reporting.check_min ~claim:"model evaluation throughput (configs/s)"
        ~paper:"~1,000,000/s" ~value:configs_per_s ~at_least:100_000.0 ]
  | _ -> []
