(* Bechamel micro-benchmarks: one Test.make per reproduced table/figure,
   measuring the core inner operation that experiment exercises. These
   quantify the practicality claims of the paper on our substrate — e.g.
   §6's "up to a million configurations per second can be evaluated". *)

open Bechamel
open Toolkit
module GP = Codegen.Gemm_params

let linpack = GP.input ~b_trans:true 2048 2048 2048
let linpack_cfg =
  { GP.ms = 8; ns = 8; ks = 1; ml = 64; nl = 64; u = 8; kl = 1; kg = 1; vec = 4;
    db = 2 }

let conv_input =
  Codegen.Conv_params.input ~n:16 ~c:512 ~k:48 ~p:14 ~q:14 ~r:5 ~s:5 ()

let tests () =
  let rng = Util.Rng.create 99 in
  let sampler = Tuner.Dataset.fit_gemm_sampler ~warmup:2000 rng Gpu.Device.p100 in
  let net = Mlp.Network.create rng ~sizes:[| Tuner.Features.dim; 32; 64; 32; 1 |] in
  let feats =
    Tuner.Features.gemm_features ~log:true linpack (GP.config_to_array linpack_cfg)
  in
  let batch =
    let n = 256 in
    let x = Mlp.Tensor.create n Tuner.Features.dim in
    for i = 0 to n - 1 do
      Array.blit feats 0 x.Mlp.Tensor.data (i * Tuner.Features.dim)
        Tuner.Features.dim
    done;
    x
  in
  let small = GP.input 32 32 32 in
  let small_cfg =
    { GP.ms = 2; ns = 2; ks = 1; ml = 16; nl = 16; u = 8; kl = 1; kg = 1; vec = 1;
      db = 1 }
  in
  let a = Array.init (32 * 32) (fun _ -> Util.Rng.uniform rng) in
  let b = Array.init (32 * 32) (fun _ -> Util.Rng.uniform rng) in
  [ Test.make ~name:"table1: categorical sample"
      (Staged.stage (fun () -> ignore (Tuner.Sampler.sample rng sampler)));
    Test.make ~name:"table2: MLP inference (1 config)"
      (Staged.stage (fun () -> ignore (Mlp.Network.predict_one net feats)));
    Test.make ~name:"fig5: MLP inference (batch 256)"
      (Staged.stage (fun () -> ignore (Mlp.Network.predict net batch)));
    Test.make ~name:"table3: occupancy calculation"
      (Staged.stage (fun () ->
           ignore
             (Gpu.Occupancy.calc Gpu.Device.p100
                { regs_per_thread = 72; shared_bytes = 12544; threads_per_block = 128 })));
    Test.make ~name:"fig6-8: GEMM cost + timing model"
      (Staged.stage (fun () ->
           ignore (Gpu.Perf_model.predict Gpu.Device.p100 (GP.cost linpack linpack_cfg))));
    Test.make ~name:"fig9-11: CONV cost + timing model"
      (Staged.stage (fun () ->
           ignore
             (Gpu.Perf_model.predict Gpu.Device.p100
                (Codegen.Conv_params.cost conv_input linpack_cfg))));
    Test.make ~name:"table6: legality check"
      (Staged.stage (fun () -> ignore (GP.structurally_legal linpack linpack_cfg)));
    Test.make ~name:"sec8.1: executor measurement"
      (Staged.stage (fun () ->
           ignore (Gpu.Executor.measure rng Gpu.Device.p100 (GP.cost linpack linpack_cfg))));
    Test.make ~name:"sec8.3: PTX generation (64x64 kernel)"
      (Staged.stage (fun () -> ignore (Codegen.Gemm.generate linpack linpack_cfg)));
    Test.make ~name:"sec4.2: interpreter 32^3 GEMM"
      (Staged.stage (fun () -> ignore (Codegen.Gemm.run small small_cfg ~a ~b)));
    (let program = Codegen.Gemm.generate linpack linpack_cfg in
     Test.make ~name:"regalloc: liveness + linear scan"
       (Staged.stage (fun () -> ignore (Ptx.Regalloc.allocate program))));
    (let program = Codegen.Gemm.generate linpack linpack_cfg in
     Test.make ~name:"scoreboard_analyze: stalls + pressure (64x64 kernel)"
       (Staged.stage (fun () -> ignore (Ptx.Scoreboard.analyze program))));
    (let program = Codegen.Gemm.generate linpack linpack_cfg in
     Test.make ~name:"scoreboard_lint: liveness lints (64x64 kernel)"
       (Staged.stage (fun () -> ignore (Ptx.Scoreboard.lint program))));
    (let program = Codegen.Gemm.generate small small_cfg in
     let grid = Codegen.Gemm.grid small small_cfg in
     let block = Codegen.Gemm.block small_cfg in
     let iargs = [ ("M", 32); ("N", 32); ("K", 32) ] in
     Test.make ~name:"scoreboard_trips: abstract trip counts (32^3)"
       (Staged.stage (fun () ->
            ignore (Ptx.Scoreboard.block_trips ~grid ~block ~iargs program))));
    (let spec = Frontend.Einsum.parse "mk,kn->mn" in
     Test.make ~name:"frontend: einsum parse + classify"
       (Staged.stage (fun () -> ignore (Frontend.Einsum.parse "bmk,bkn->bmn") |> fun () -> ignore spec))) ]

(* Interpreter throughput: dynamic instructions per second on a fixed
   GEMM launch (64^3, 16 blocks) — the rate every interpreter-backed
   pipeline (dataset labelling, attribution, differential tests) is
   bound by. Measured three ways so the BENCH report both gates
   regressions of the threaded-code engine and records its speedup over
   the retained reference engine: reference decode-per-step, compiled
   single-domain, and compiled at the ambient domain count. *)
let interp_throughput () =
  let input = GP.input 64 64 64 in
  let cfg =
    { GP.ms = 2; ns = 2; ks = 1; ml = 16; nl = 16; u = 8; kl = 1; kg = 1;
      vec = 1; db = 1 }
  in
  let rng = Util.Rng.create 7 in
  let a = Array.init (64 * 64) (fun _ -> Util.Rng.uniform rng) in
  let b = Array.init (64 * 64) (fun _ -> Util.Rng.uniform rng) in
  let program = Codegen.Gemm.generate input cfg in
  let grid = Codegen.Gemm.grid input cfg and block = Codegen.Gemm.block cfg in
  let iargs = [ ("M", 64); ("N", 64); ("K", 64) ] in
  let launch run =
    let out = Array.make (64 * 64) 0.0 in
    let t0 = Unix.gettimeofday () in
    let c = run [ ("A", a); ("B", b); ("C", out) ] in
    let dt = Float.max 1e-9 (Unix.gettimeofday () -. t0) in
    float_of_int (Ptx.Interp.total c) /. dt
  in
  let reps = 5 in
  let measure name run =
    ignore (launch run) (* warm-up *);
    let samples = Array.init reps (fun _ -> launch run) in
    let srng = Util.Rng.create (Util.Env_config.seed () + Hashtbl.hash name) in
    let median = Util.Stats.median samples in
    let ci =
      Util.Stats.bootstrap_ci ~resamples:500 srng samples
        ~estimator:Util.Stats.median
    in
    Reporting.metric ~experiment:"micro" ~unit_:"instr/s"
      ~kind:Obs.Bench_report.Timing ~direction:Obs.Bench_report.Higher_better
      ~ci ~n:reps name median;
    median
  in
  let ref_tp =
    measure "micro.interp_ref_instr_per_s" (fun bufs ->
        Ptx.Interp_ref.run program ~grid ~block ~bufs ~iargs)
  in
  let serial_tp =
    measure "micro.interp_instr_per_s.serial" (fun bufs ->
        Ptx.Interp.run ~domains:1 program ~grid ~block ~bufs ~iargs)
  in
  let domains = Util.Parallel.recommended_domains () in
  let par_tp =
    measure "micro.interp_instr_per_s" (fun bufs ->
        Ptx.Interp.run ~domains program ~grid ~block ~bufs ~iargs)
  in
  Printf.printf
    "\nInterpreter throughput (64^3 GEMM): reference %.3g instr/s; compiled \
     %.3g (x%.2f serial); %.3g (x%.2f at %d domains)\n"
    ref_tp serial_tp (serial_tp /. ref_tp) par_tp (par_tp /. ref_tp) domains;
  Reporting.metric ~experiment:"micro" ~unit_:"x"
    ~kind:Obs.Bench_report.Timing "micro.interp_speedup_vs_ref"
    (par_tp /. ref_tp);
  (* Engine duel — the default flat-bytecode dispatch loop vs the
     retained closure-threaded engine, single domain. Runs interleave
     rep by rep so clock drift hits both engines equally, and min-of-
     reps is the robust estimator for a deterministic workload on a
     noisy box. Measured on two workloads: the replay-heavy 64^3 GEMM
     (shared-memory transaction grouping bounds the win) and an
     FFMA-dense loop (dispatch-bound, where superinstruction fusion
     pays; design target >= 1.5x). The blocking gate only requires the
     default engine to never lose to the engine it replaced. *)
  let duel run_closures run_bytecode =
    let reps = 12 in
    let bc = ref infinity and bb = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (run_closures ());
      let t1 = Unix.gettimeofday () in
      ignore (run_bytecode ());
      let t2 = Unix.gettimeofday () in
      if t1 -. t0 < !bc then bc := t1 -. t0;
      if t2 -. t1 < !bb then bb := t2 -. t1
    done;
    (!bc, !bb)
  in
  let fresh_out () = Array.make (64 * 64) 0.0 in
  let gemm_bufs out = [ ("A", a); ("B", b); ("C", out) ] in
  let gemm_c, gemm_b =
    duel
      (fun () ->
        Ptx.Interp.run_closures ~domains:1 program ~grid ~block
          ~bufs:(gemm_bufs (fresh_out ())) ~iargs)
      (fun () ->
        Ptx.Interp.run_bytecode ~domains:1 program ~grid ~block
          ~bufs:(gemm_bufs (fresh_out ())) ~iargs)
  in
  let total =
    float_of_int
      (Ptx.Interp.total
         (Ptx.Interp.run ~domains:1 program ~grid ~block
            ~bufs:(gemm_bufs (fresh_out ())) ~iargs))
  in
  Reporting.metric ~experiment:"micro" ~unit_:"instr/s"
    ~kind:Obs.Bench_report.Timing ~direction:Obs.Bench_report.Higher_better
    "micro.interp_closures_instr_per_s" (total /. gemm_c);
  Reporting.metric ~experiment:"micro" ~unit_:"instr/s"
    ~kind:Obs.Bench_report.Timing ~direction:Obs.Bench_report.Higher_better
    "micro.interp_bytecode_instr_per_s" (total /. gemm_b);
  let gemm_speedup = gemm_c /. gemm_b in
  Reporting.metric ~experiment:"micro" ~unit_:"x"
    ~kind:Obs.Bench_report.Timing ~direction:Obs.Bench_report.Higher_better
    "micro.interp_bytecode_speedup_vs_closures" gemm_speedup;
  (* Dispatch-bound workload: a tight loop mixing a short dependent FFMA
     chain (fused into one FFMA-run superinstruction) with the loop's
     add/setp/branch control — no memory traffic, so per-instruction
     dispatch cost is the whole story. *)
  let ffma_src = {|.visible .entry ffma_loop (  // dtype=f32
  .param .u64 O,  // buf0
)
{ // 8 fregs, 2 iregs, 1 pregs, 0 shared words, 0 shared int words
  mov.s32 %r0, 0
loop:
  fma.rn.f32 %f1, %f0, %f2, %f3
  fma.rn.f32 %f2, %f1, %f3, %f4
  fma.rn.f32 %f3, %f2, %f4, %f5
  fma.rn.f32 %f0, %f3, %f5, %f6
  add.s32 %r0, %r0, 1
  setp.lt.s32 %p0, %r0, 40000
  @%p0 bra loop
  mov.s32 %r1, %tid.x
  st.global.f32 [%param_buf0 + %r1], %f0
  ret
}|} in
  let ffma_p =
    match Ptx.Asm.parse ffma_src with
    | Ok p -> p
    | Error e -> failwith ("micro: ffma kernel: " ^ e)
  in
  let ffma_bufs () = [ ("O", Array.make 64 0.0) ] in
  let ffma_c, ffma_b =
    duel
      (fun () ->
        Ptx.Interp.run_closures ~domains:1 ffma_p ~grid:(1, 1, 1)
          ~block:(64, 1, 1) ~bufs:(ffma_bufs ()) ~iargs:[])
      (fun () ->
        Ptx.Interp.run_bytecode ~domains:1 ffma_p ~grid:(1, 1, 1)
          ~block:(64, 1, 1) ~bufs:(ffma_bufs ()) ~iargs:[])
  in
  let ffma_speedup = ffma_c /. ffma_b in
  Reporting.metric ~experiment:"micro" ~unit_:"x"
    ~kind:Obs.Bench_report.Timing ~direction:Obs.Bench_report.Higher_better
    "micro.interp_bytecode_ffma_speedup_vs_closures" ffma_speedup;
  Printf.printf
    "Bytecode vs closure engine (1 domain, min of 12 interleaved): GEMM \
     x%.2f, FFMA-dense x%.2f\n"
    gemm_speedup ffma_speedup;
  [ Reporting.check_min ~claim:"threaded-code interpreter beats reference"
      ~paper:"n/a (extension)" ~value:(serial_tp /. ref_tp) ~at_least:1.5;
    Reporting.check_min
      ~claim:"bytecode dispatch at least matches closure engine (GEMM)"
      ~paper:"n/a (extension)" ~value:gemm_speedup ~at_least:1.0;
    Reporting.check_min
      ~claim:
        "bytecode dispatch at least matches closure engine (FFMA-dense; \
         design target 1.5x)"
      ~paper:"n/a (extension)" ~value:ffma_speedup ~at_least:1.0 ]

(* Artifact-size regression row: the packed Ptx.Encode wire format vs
   the disassembled kernel text, over the bench GEMM/CONV kernels (the
   linpack tile and a CONV layer at three tile sizes). This is the
   compression the v3 plan cache and dataset kernel corpora ship with;
   kernels are register-allocated first, as the plan cache encodes
   them. The gate holds the dense format to at least 3x smaller. *)
let kernel_pack () =
  let conv_cfgs =
    [ { GP.ms = 8; ns = 8; ks = 1; ml = 64; nl = 64; u = 8; kl = 1; kg = 1;
        vec = 4; db = 2 };
      { GP.ms = 4; ns = 4; ks = 1; ml = 32; nl = 32; u = 8; kl = 1; kg = 1;
        vec = 2; db = 1 };
      { GP.ms = 2; ns = 2; ks = 1; ml = 16; nl = 16; u = 8; kl = 1; kg = 1;
        vec = 1; db = 1 } ]
  in
  let programs =
    Codegen.Gemm.generate linpack linpack_cfg
    :: List.map (fun c -> Codegen.Conv.generate conv_input c) conv_cfgs
  in
  let packed = ref 0 and text = ref 0 and n = ref 0 in
  List.iter
    (fun p ->
      let pa = Ptx.Regalloc.allocate p in
      match Ptx.Encode.encode pa with
      | Error e -> failwith ("micro.kernel_pack: " ^ e)
      | Ok e ->
        incr n;
        packed := !packed + Ptx.Encode.byte_size e;
        text := !text + String.length (Ptx.Disasm.program pa))
    programs;
  let ratio = float_of_int !text /. float_of_int (max 1 !packed) in
  Printf.printf
    "\nKernel artifact size (%d bench kernels): packed %d bytes, text %d \
     bytes (%.2fx smaller)\n"
    !n !packed !text ratio;
  Reporting.metric ~experiment:"micro" ~unit_:"bytes" ~n:!n
    ~direction:Obs.Bench_report.Lower_better "micro.kernel_packed_bytes"
    (float_of_int !packed);
  Reporting.metric ~experiment:"micro" ~unit_:"x" ~n:!n
    ~direction:Obs.Bench_report.Higher_better "micro.kernel_pack_ratio" ratio;
  [ Reporting.check_min ~claim:"packed kernels at least 3x smaller than text"
      ~paper:"n/a (extension)" ~value:ratio ~at_least:3.0 ]

(* Interactive planning latency (the paper's §6 runtime step): wall
   clock of one end-to-end exhaustive-search plan — enumerate the legal
   lattice, featurize, score with the MLP, argmax, re-benchmark the
   short-list — on a DeepBench-flavored GEMM (2560x16x2560 f32) over
   the GTX 980 Ti lattice, capped at 8,000 scored candidates (an
   interactive budget). Measured for the default batched engine and
   the retained scalar reference, single-domain so the gate holds on a
   one-core CI box. Two gates ride on it: the batched path must be
   >= 5x faster than the reference it replaced, and — the argmax-
   equality deterministic check — both engines must pick the identical
   kernel (same config, same re-benchmarked speed), which is what
   licenses serving plans from the fast path at all. *)
let plan_cap = 8_000
let plan_input = GP.input 2560 16 2560

let plan_latency () =
  (* The bechamel loops above leave a large, fragmented major heap;
     without a compaction the planner's big short-lived arrays trigger
     major slices mid-measurement and the timings measure the GC, not
     the planner. *)
  Gc.compact ();
  let device = Gpu.Device.gtx980ti in
  let tune_rng = Util.Rng.create 411 in
  let engine =
    Isaac.tune ~samples:1500 ~epochs:12 tune_rng device ~op:`Gemm ()
  in
  let profile = Isaac.profile engine in
  (* A fresh rng per plan call: both engines see identical re-benchmark
     noise draws, so plan equality is exact, not statistical. *)
  let plan kind =
    let rng = Util.Rng.create 3001 in
    let t0 = Unix.gettimeofday () in
    let r =
      Tuner.Search.exhaustive_gemm ~cap:plan_cap ~domains:1 ~engine:kind rng
        device ~profile plan_input
    in
    let dt = (Unix.gettimeofday () -. t0) *. 1e3 in
    match r with
    | Some r -> (r, dt)
    | None -> failwith "plan_latency: no legal configuration"
  in
  let reps = 5 in
  let measure name kind =
    let r0, _ = plan kind (* warm-up *) in
    let samples = Array.init reps (fun _ -> snd (plan kind)) in
    let srng = Util.Rng.create (Util.Env_config.seed () + Hashtbl.hash name) in
    let median = Util.Stats.median samples in
    let ci =
      Util.Stats.bootstrap_ci ~resamples:500 srng samples
        ~estimator:Util.Stats.median
    in
    Reporting.metric ~experiment:"micro" ~unit_:"ms"
      ~kind:Obs.Bench_report.Timing ~direction:Obs.Bench_report.Lower_better
      ~ci ~n:reps name median;
    (r0, median)
  in
  let batched, batched_ms = measure "micro.plan_latency_ms" `Batched in
  let scalar, scalar_ms = measure "micro.plan_latency_scalar_ms" `Scalar in
  let speedup = scalar_ms /. batched_ms in
  Reporting.metric ~experiment:"micro" ~unit_:"x"
    ~kind:Obs.Bench_report.Timing ~direction:Obs.Bench_report.Higher_better
    "micro.plan_speedup_vs_scalar" speedup;
  let argmax_equal =
    GP.equal_config batched.Tuner.Search.best scalar.Tuner.Search.best
    && batched.best_measurement.tflops = scalar.best_measurement.tflops
    && batched.n_legal = scalar.n_legal
    && batched.n_scored = scalar.n_scored
  in
  Reporting.metric ~experiment:"micro" ~unit_:"bool"
    "micro.plan_argmax_equal"
    (if argmax_equal then 1.0 else 0.0);
  Reporting.metric ~experiment:"micro" ~unit_:"configs"
    "micro.plan_n_legal"
    (float_of_int batched.n_legal);
  Printf.printf
    "\nPlanning latency (GEMM 2560x16x2560, cap %d, 1 domain): batched %.1f \
     ms, scalar %.1f ms (x%.2f); engines agree: %b\n"
    plan_cap batched_ms scalar_ms speedup argmax_equal;
  [ Reporting.check_min ~claim:"batched planning speedup over scalar reference"
      ~paper:"n/a (extension)" ~value:speedup ~at_least:5.0;
    Reporting.check ~claim:"batched/scalar engines plan identical kernel"
      ~paper:"n/a (exact)"
      ~ours:(if argmax_equal then "identical" else "DIVERGED")
      ~pass:argmax_equal ]

(* Always-on telemetry overhead: what the serving hot path pays per
   instrumented call site. Three rep-based timings of the same gated
   counter bump — a no-op loop baseline, the bump with ISAAC_TELEMETRY
   unset (one atomic bool load; must be within noise of the baseline),
   and the bump with telemetry live (bool load + sharded fetch_and_add;
   gated at < 50 ns so instrumentation can stay on in production). *)
let telemetry_overhead () =
  let module T = Obs.Telemetry in
  let iters = 2_000_000 and reps = 7 in
  let time_ns f =
    let t0 = Unix.gettimeofday () in
    f iters;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters
  in
  let measure name f =
    ignore (time_ns f) (* warm-up *);
    let samples = Array.init reps (fun _ -> time_ns f) in
    let srng = Util.Rng.create (Util.Env_config.seed () + Hashtbl.hash name) in
    let median = Util.Stats.median samples in
    let ci =
      Util.Stats.bootstrap_ci ~resamples:500 srng samples
        ~estimator:Util.Stats.median
    in
    Reporting.metric ~experiment:"micro" ~unit_:"ns/op"
      ~kind:Obs.Bench_report.Timing ~direction:Obs.Bench_report.Lower_better
      ~ci ~n:reps name median;
    median
  in
  if T.enabled () then
    failwith "telemetry_overhead: run the bench with ISAAC_TELEMETRY unset";
  let c = T.counter "bench.telemetry_probe" in
  let noop n =
    for i = 1 to n do
      ignore (Sys.opaque_identity i)
    done
  in
  let bump n =
    for i = 1 to n do
      ignore (Sys.opaque_identity i);
      if T.enabled () then T.Counter.incr c
    done
  in
  let noop_ns = measure "micro.telemetry_noop_ns" noop in
  let disabled_ns = measure "micro.telemetry_disabled_ns" bump in
  let path = Filename.temp_file "isaac_bench_telemetry" ".jsonl" in
  let enabled_ns =
    T.start ~path ();
    Fun.protect
      ~finally:(fun () ->
        T.stop ();
        T.reset ();
        if Sys.file_exists path then Sys.remove path;
        if Sys.file_exists (path ^ ".prom") then Sys.remove (path ^ ".prom"))
      (fun () -> measure "micro.telemetry_counter_ns" bump)
  in
  let gate_cost = disabled_ns -. noop_ns in
  Printf.printf
    "\nTelemetry overhead: no-op loop %.1f ns; disabled gate %.1f ns (+%.1f \
     ns); enabled counter bump %.1f ns\n"
    noop_ns disabled_ns gate_cost enabled_ns;
  Reporting.metric ~experiment:"micro" ~unit_:"ns/op"
    ~kind:Obs.Bench_report.Timing ~direction:Obs.Bench_report.Lower_better
    "micro.telemetry_overhead_ns"
    (Float.max 0.0 (enabled_ns -. noop_ns));
  [ Reporting.check ~claim:"disabled telemetry gate within noise of no-op"
      ~paper:"n/a (extension)"
      ~ours:(Printf.sprintf "+%.1f ns" gate_cost)
      ~pass:(gate_cost <= 15.0);
    Reporting.check ~claim:"enabled telemetry counter bump under 50 ns"
      ~paper:"n/a (extension)"
      ~ours:(Printf.sprintf "%.1f ns" enabled_ns)
      ~pass:(enabled_ns < 50.0) ]

(* Per-sample ns/op observations extracted from the raw measurements
   (total ns of a batch divided by its run count): the input to the
   median + percentile-bootstrap confidence interval the benchmark
   report records, following the robust-timing methodology bechamel
   inherits (medians and CIs rather than means over noisy samples). *)
let ns_samples (b : Benchmark.t) =
  let label = Measure.label Instance.monotonic_clock in
  b.Benchmark.lr
  |> Array.to_list
  |> List.filter_map (fun m ->
         let runs = Measurement_raw.run m in
         if runs > 0.0 then Some (Measurement_raw.get ~label m /. runs)
         else None)
  |> Array.of_list

let run () =
  (* Plan latency first: the bechamel loops below leave a large major
     heap, and measuring after them times GC slices, not the planner. *)
  let plan_checks = plan_latency () in
  let telemetry_checks = telemetry_overhead () in
  Reporting.print_header "Bechamel micro-benchmarks (one per experiment)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"isaac" (tests ()))
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> t
        | _ -> Float.nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort compare !rows in
  let stats =
    List.filter_map
      (fun (name, _) ->
        match Hashtbl.find_opt raw name with
        | None -> None
        | Some b ->
          let samples = ns_samples b in
          if Array.length samples = 0 then None
          else begin
            let rng =
              Util.Rng.create (Util.Env_config.seed () + Hashtbl.hash name)
            in
            let median = Util.Stats.median samples in
            let ci =
              Util.Stats.bootstrap_ci ~resamples:500 rng samples
                ~estimator:Util.Stats.median
            in
            Reporting.metric ~experiment:"micro" ~unit_:"ns/op"
              ~kind:Obs.Bench_report.Timing
              ~direction:Obs.Bench_report.Lower_better ~ci
              ~n:(Array.length samples)
              ("micro." ^ name) median;
            Some (name, (median, ci, Array.length samples))
          end)
      rows
  in
  Util.Table.print
    ~header:[| "micro-benchmark"; "ns/op (OLS)"; "median"; "95% CI"; "ops/s" |]
    (List.map
       (fun (name, ns) ->
         let median, (lo, hi), _ =
           match List.assoc_opt name stats with
           | Some s -> s
           | None -> (Float.nan, (Float.nan, Float.nan), 0)
         in
         [| name; Printf.sprintf "%.0f" ns; Printf.sprintf "%.0f" median;
            Printf.sprintf "[%.0f, %.0f]" lo hi;
            Printf.sprintf "%.3g" (1e9 /. Float.max 1.0 ns) |])
       rows);
  (* §6 claim: "up to a million different configurations per second can be
     evaluated" — configurations scored per second through the batch path. *)
  let scoring_checks =
    match
      List.find_opt
        (fun (name, _) -> String.ends_with ~suffix:"(batch 256)" name)
        rows
    with
    | Some (_, ns) when ns > 0.0 && not (Float.is_nan ns) ->
      let configs_per_s = 256.0 /. (ns /. 1e9) in
      Printf.printf "\nExhaustive-search scoring rate: %.3g configs/s (paper: ~1e6/s)\n"
        configs_per_s;
      Reporting.metric ~experiment:"micro" ~unit_:"configs/s"
        ~kind:Obs.Bench_report.Timing "micro.scoring_rate" configs_per_s;
      [ Reporting.check_min ~claim:"model evaluation throughput (configs/s)"
          ~paper:"~1,000,000/s" ~value:configs_per_s ~at_least:100_000.0 ]
    | _ -> []
  in
  scoring_checks @ interp_throughput () @ kernel_pack () @ plan_checks
  @ telemetry_checks
