(* Tables 4 and 5: the evaluation task lists themselves, printed with
   their derived quantities so the suites can be audited against the
   paper (the conv suite's NPQ/CRS columns are pinned by unit tests
   too). *)

module GP = Codegen.Gemm_params
module CP = Codegen.Conv_params

let run_table4 () =
  Reporting.print_header "Table 4: GEMM tasks (fp32 suite; fig-8 variant uses fp16/fp64)";
  let yn b = if b then "Yes" else "No" in
  Util.Table.print
    ~header:[| "suite"; "M"; "N"; "K"; "A-T"; "B-T"; "flops"; "arithmetic intensity" |]
    (List.map
       (fun (t : Workloads.Gemm_suites.task) ->
         let i = t.input in
         let flops = 2.0 *. float_of_int i.m *. float_of_int i.n *. float_of_int i.k in
         let bytes =
           float_of_int
             (((i.m * i.k) + (i.k * i.n) + (i.m * i.n))
             * Ptx.Types.dtype_bytes i.dtype)
         in
         [| t.group; string_of_int i.m; string_of_int i.n; string_of_int i.k;
            yn i.a_trans; yn i.b_trans;
            Printf.sprintf "%.2g" flops;
            Printf.sprintf "%.1f flop/B" (flops /. bytes) |])
       (Workloads.Gemm_suites.fp32_suite ~mk:2560));
  let n_tasks = List.length (Workloads.Gemm_suites.fp32_suite ~mk:2560) in
  [ Reporting.check ~claim:"all four task families present"
      ~paper:"LINPACK + DeepBench F/B + ICA + SVD"
      ~ours:(Printf.sprintf "%d tasks" n_tasks)
      ~pass:(n_tasks = 17) ]

let run_table5 () =
  Reporting.print_header "Table 5: CONV tasks (DeepBench layers)";
  Util.Table.print
    ~header:[| "application"; "layer"; "N"; "P"; "Q"; "K"; "C"; "R"; "S"; "NPQ"; "CRS" |]
    (List.map
       (fun (t : Workloads.Conv_suites.task) ->
         let i = t.input in
         [| t.group; t.label; string_of_int i.n; string_of_int i.p;
            string_of_int i.q; string_of_int i.k; string_of_int i.c;
            string_of_int i.r; string_of_int i.s;
            string_of_int (CP.npq i); string_of_int (CP.crs i) |])
       (Workloads.Conv_suites.suite Ptx.Types.F32));
  (* Pin two rows against the paper's own NPQ/CRS columns. *)
  let conv1 = Workloads.Conv_suites.find "Conv1" Ptx.Types.F32 in
  let conv8 = Workloads.Conv_suites.find "Conv8" Ptx.Types.F32 in
  [ Reporting.check ~claim:"Conv1 NPQ/CRS match Table 5" ~paper:"431024 / 100"
      ~ours:(Printf.sprintf "%d / %d" (CP.npq conv1.input) (CP.crs conv1.input))
      ~pass:(CP.npq conv1.input = 431024 && CP.crs conv1.input = 100);
    Reporting.check ~claim:"Conv8 NPQ/CRS match Table 5" ~paper:"784 / 20800"
      ~ours:(Printf.sprintf "%d / %d" (CP.npq conv8.input) (CP.crs conv8.input))
      ~pass:(CP.npq conv8.input = 784 && CP.crs conv8.input = 20800) ]
