(* CONV experiments: Figure 9 (SCONV on the GTX 980 Ti), Figure 10 (SCONV
   on the P100) and Figure 11 (HCONV on the P100), ISAAC vs the
   cuDNN-like baseline pinned to IMPLICIT_PRECOMP_GEMM. *)

module CP = Codegen.Conv_params
module WS = Workloads.Conv_suites

type row = {
  task : WS.task;
  isaac : float;
  cudnn : float;
  config : Codegen.Gemm_params.config;
}

let run_suite device dtype =
  let engine = Engines.conv device in
  let rng = Engines.fresh_rng ("conv-suite-" ^ device.Gpu.Device.name) in
  List.map
    (fun (task : WS.task) ->
      let plan =
        match Isaac.plan_conv engine task.input with
        | Some p -> p
        | None -> failwith ("no ISAAC plan for " ^ task.label)
      in
      let cudnn =
        match Baselines.Cudnn.heuristic rng device task.input with
        | Some (_, m) -> m.tflops
        | None -> 0.0
      in
      Printf.printf "  %-16s %-7s isaac %6.2f | cudnn %6.2f  (%s)\n%!" task.group
        task.label plan.measurement.tflops cudnn
        (Codegen.Gemm_params.describe plan.config);
      { task; isaac = plan.measurement.tflops; cudnn; config = plan.config })
    (WS.suite dtype)

let print_rows rows =
  Util.Table.print
    ~header:[| "application"; "layer"; "ISAAC"; "cuDNN"; "speedup" |]
    (List.map
       (fun r ->
         [| r.task.WS.group; r.task.label; Reporting.fmt_tf r.isaac;
            Reporting.fmt_tf r.cudnn;
            Printf.sprintf "%.2fx" (r.isaac /. Float.max 1e-9 r.cudnn) |])
       rows)

let save_series name rows =
  Reporting.save_csv name
    ~header:[ "isaac_tflops"; "cudnn_tflops" ]
    (List.map (fun r -> [| r.isaac; r.cudnn |]) rows);
  Reporting.bar_chart ~series:[ "ISAAC"; "cuDNN" ]
    (List.map (fun r -> (r.task.WS.label, [ r.isaac; r.cudnn ])) rows)

let speedup rows label =
  let r = List.find (fun r -> r.task.WS.label = label) rows in
  r.isaac /. Float.max 1e-9 r.cudnn

let geomean rows =
  Util.Stats.geomean
    (Array.of_list (List.map (fun r -> r.isaac /. Float.max 1e-9 r.cudnn) rows))

(* Deterministic per-suite aggregates for the benchmark report. *)
let record_metrics fig rows =
  Reporting.metric ~experiment:fig ~unit_:"tflops"
    (fig ^ ".isaac_geomean_tflops")
    (Util.Stats.geomean (Array.of_list (List.map (fun r -> r.isaac) rows)));
  Reporting.metric ~experiment:fig ~unit_:"ratio"
    (fig ^ ".geomean_speedup_vs_cudnn") (geomean rows)

let run_fig9 () =
  Reporting.print_header "Figure 9: SCONV on the GTX 980 Ti (ISAAC vs cuDNN)";
  let rows = run_suite Gpu.Device.gtx980ti Ptx.Types.F32 in
  print_rows rows;
  save_series "fig9_sconv_gtx980ti" rows;
  record_metrics "fig9" rows;
  [ Reporting.check_min ~claim:"competitive overall (geomean speedup)"
      ~paper:"noticeable but smaller than GEMM" ~value:(geomean rows) ~at_least:1.0;
    Reporting.check_min ~claim:"deep reductions: Conv7" ~paper:"1.5-2x"
      ~value:(speedup rows "Conv7") ~at_least:1.1;
    Reporting.check_min ~claim:"deep reductions: Conv8" ~paper:"1.5-2x"
      ~value:(speedup rows "Conv8") ~at_least:1.25;
    Reporting.check_min ~claim:"small NPQ, RS>1: Conv13" ~paper:"~1.1"
      ~value:(speedup rows "Conv13") ~at_least:1.0 ]

let run_fig10 () =
  Reporting.print_header "Figure 10: SCONV on the Tesla P100 (ISAAC vs cuDNN)";
  let rows = run_suite Gpu.Device.p100 Ptx.Types.F32 in
  print_rows rows;
  save_series "fig10_sconv_p100" rows;
  record_metrics "fig10" rows;
  [ Reporting.check_min ~claim:"larger gains than Maxwell (geomean speedup)"
      ~paper:"cuDNN tailored to Maxwell" ~value:(geomean rows) ~at_least:1.05;
    Reporting.check_min ~claim:"Conv8 speedup" ~paper:">5x"
      ~value:(speedup rows "Conv8") ~at_least:1.5;
    Reporting.check_min ~claim:"Conv13 speedup" ~paper:"~1.7"
      ~value:(speedup rows "Conv13") ~at_least:1.1 ]

let run_fig11 () =
  Reporting.print_header "Figure 11: HCONV on the Tesla P100 (ISAAC vs cuDNN)";
  let rows = run_suite Gpu.Device.p100 Ptx.Types.F16 in
  print_rows rows;
  save_series "fig11_hconv_p100" rows;
  record_metrics "fig11" rows;
  let wins = List.length (List.filter (fun r -> r.isaac >= r.cudnn *. 0.98) rows) in
  [ Reporting.check_min ~claim:"fp16 geomean speedup (tiling-scheme flexibility)"
      ~paper:"almost consistently faster" ~value:(geomean rows) ~at_least:1.1;
    Reporting.check ~claim:"faster on nearly every layer"
      ~paper:"14/14"
      ~ours:(Printf.sprintf "%d/14" wins)
      ~pass:(wins >= 11) ]
