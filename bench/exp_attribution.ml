(* Model-vs-counter attribution: sample verified GEMM/CONV configurations
   on small shapes, execute each kernel under the interpreter, and
   correlate every Perf_model cost term against its emulated hardware
   counter (Gpu.Attribution). Shapes are small enough that the
   interpreter — the reproduction's ground truth — really runs every
   kernel; configs and shapes both vary, so each cost term sweeps a wide
   dynamic range and a healthy model shows r close to 1 with low drift. *)

module GP = Codegen.Gemm_params
module CP = Codegen.Conv_params

let device = Gpu.Device.p100

let gemm_shapes =
  [ GP.input 16 16 16;
    GP.input 32 32 32;
    GP.input 64 32 32;
    GP.input ~b_trans:true 32 64 32;
    GP.input 64 64 64;
    GP.input 96 96 96 ]

let conv_shapes =
  [ CP.input ~n:2 ~c:8 ~k:16 ~p:8 ~q:8 ~r:3 ~s:3 ();
    CP.input ~n:1 ~c:16 ~k:32 ~p:6 ~q:6 ~r:3 ~s:3 ();
    CP.input ~n:4 ~c:16 ~k:32 ~p:12 ~q:12 ~r:3 ~s:3 () ]

let per_shape () = Util.Env_config.int "ISAAC_ATTR_PER_SHAPE" 8

(* Draw up to [n] distinct verified configurations for one shape. *)
let sample_configs rng ~legal ~verify n =
  let space = Tuner.Config_space.gemm in
  let sampler = Tuner.Sampler.fit ~warmup:2000 rng space ~legal in
  let seen = Hashtbl.create 16 in
  let rec go acc remaining tries =
    if remaining = 0 || tries = 0 then List.rev acc
    else
      match Tuner.Sampler.sample_verified rng sampler ~legal ~verify with
      | None -> List.rev acc
      | Some flat ->
        let key = Array.to_list flat in
        if Hashtbl.mem seen key then go acc remaining (tries - 1)
        else begin
          Hashtbl.add seen key ();
          go (flat :: acc) (remaining - 1) (tries - 1)
        end
  in
  go [] n (20 * n)

(* Attach the static scoreboard schedule to a cost descriptor, enabling
   the latency-pipeline term and the stall-density attribution row. *)
let with_sched cost program =
  match Ptx.Scoreboard.analyze program with
  | Ok t -> Gpu.Kernel_cost.with_sched cost t.Ptx.Scoreboard.summary
  | Error _ -> cost

(* The plan cache's kernel identity (packed-encoding hash of the
   register-allocated kernel), carried on each sample so outliers can be
   joined back to the exact kernel binary. *)
let hash_of program =
  match Ptx.Encode.hash_program (Ptx.Regalloc.allocate program) with
  | Ok h -> Some h
  | Error _ -> None

let gemm_samples rng input =
  let legal = Tuner.Dataset.gemm_legal device input in
  let verify = Tuner.Dataset.gemm_static_ok input in
  let a = Array.init (input.GP.m * input.GP.k) (fun _ -> Util.Rng.uniform rng) in
  let b = Array.init (input.GP.k * input.GP.n) (fun _ -> Util.Rng.uniform rng) in
  List.filter_map
    (fun flat ->
      let cfg = GP.config_of_array flat in
      let program = Codegen.Gemm.generate input cfg in
      let cost = with_sched (GP.cost input cfg) program in
      match Gpu.Perf_model.predict device cost with
      | None -> None
      | Some report ->
        let _, counters = Codegen.Gemm.run_counted input cfg ~a ~b () in
        Some
          { Gpu.Attribution.label =
              Printf.sprintf "gemm %dx%dx%d %s" input.m input.n input.k
                (GP.describe cfg);
            kernel_hash = hash_of program;
            report; counters })
    (sample_configs rng ~legal ~verify (per_shape ()))

let conv_samples rng input =
  let legal = Tuner.Dataset.conv_legal device input in
  let verify = Tuner.Dataset.conv_static_ok input in
  let image =
    Array.init
      (input.CP.n * input.CP.c * CP.h input * CP.w input)
      (fun _ -> Util.Rng.uniform rng)
  in
  let filter =
    Array.init (CP.crs input * input.CP.k) (fun _ -> Util.Rng.uniform rng)
  in
  List.filter_map
    (fun flat ->
      let cfg = GP.config_of_array flat in
      let program = Codegen.Conv.generate input cfg in
      let cost = with_sched (CP.cost input cfg) program in
      match Gpu.Perf_model.predict device cost with
      | None -> None
      | Some report ->
        let _, counters = Codegen.Conv.run_counted input cfg ~image ~filter in
        Some
          { Gpu.Attribution.label = CP.describe_name input cfg;
            kernel_hash = hash_of program;
            report; counters })
    (sample_configs rng ~legal ~verify (per_shape ()))

let run () =
  Reporting.print_header
    "Attribution: Perf_model cost terms vs interpreter counters (P100)";
  let rng = Engines.fresh_rng "attribution" in
  let samples =
    List.concat_map (gemm_samples rng) gemm_shapes
    @ List.concat_map (conv_samples rng) conv_shapes
  in
  let n = List.length samples in
  let distinct =
    let set = Hashtbl.create 64 in
    List.iter
      (fun (s : Gpu.Attribution.sample) ->
        Option.iter (fun h -> Hashtbl.replace set h ()) s.kernel_hash)
      samples;
    Hashtbl.length set
  in
  Printf.printf
    "%d verified configurations executed under the interpreter (%d distinct \
     kernel hashes)\n"
    n distinct;
  Reporting.metric ~experiment:"attribution" ~unit_:"kernels" ~n
    "attribution.distinct_kernels" (float_of_int distinct);
  if Util.Env_config.bool "ISAAC_ATTR_VERBOSE" false then
    Util.Table.print
      ~header:
        (Array.of_list
           ("configuration"
           :: List.concat_map
                (fun (p : Gpu.Attribution.pairing) -> [ p.term; p.counter ])
                Gpu.Attribution.pairings))
      (List.map
         (fun (s : Gpu.Attribution.sample) ->
           Array.of_list
             (s.label
             :: List.concat_map
                  (fun (p : Gpu.Attribution.pairing) ->
                    [ Printf.sprintf "%.3g" (p.term_of s.report);
                      Printf.sprintf "%.0f" (p.counter_of s.counters) ])
                  Gpu.Attribution.pairings))
         samples);
  let rows = Gpu.Attribution.correlate samples in
  Util.Table.print
    ~header:[| "cost term"; "counter"; "n"; "pearson r"; "s/unit"; "drift" |]
    (List.map
       (fun (r : Gpu.Attribution.row) ->
         [| r.term; r.counter; string_of_int r.n;
            Printf.sprintf "%.3f" r.pearson_r;
            Printf.sprintf "%.3g" r.scale;
            Printf.sprintf "%.2f" r.drift |])
       rows);
  Reporting.record_attribution rows;
  let find term =
    List.find (fun (r : Gpu.Attribution.row) -> r.term = term) rows
  in
  List.iter
    (fun (r : Gpu.Attribution.row) ->
      Reporting.metric
        ~experiment:"attribution" ~unit_:"r" ~n:r.n
        (Printf.sprintf "attribution.%s.pearson_r" r.term)
        r.pearson_r)
    rows;
  [ Reporting.check_min ~claim:"verified configs correlated"
      ~paper:"n/a (extension)" ~value:(float_of_int n) ~at_least:32.0;
    Reporting.check_min ~claim:"memory term tracks global transactions (r)"
      ~paper:"n/a (extension)" ~value:(find "mem_seconds").pearson_r
      ~at_least:0.8;
    Reporting.check_min ~claim:"arithmetic term tracks issue slots (r)"
      ~paper:"n/a (extension)" ~value:(find "arith_seconds").pearson_r
      ~at_least:0.6;
    Reporting.check_min ~claim:"shared term tracks shared transactions (r)"
      ~paper:"n/a (extension)" ~value:(find "shared_seconds").pearson_r
      ~at_least:0.6;
    Reporting.check_min
      ~claim:"stall density tracks latency-producing slots (r)"
      ~paper:"n/a (extension)" ~value:(find "stall_cycles").pearson_r
      ~at_least:0.8 ]
