(* Plan-serving load generator: drive the isaac_serve daemon core
   (Serve.handle, the exact code behind both transports) with a mixed
   GEMM/CONV workload and report cold vs warm latency percentiles,
   plus the deterministic serving invariants the PR rests on:

   - coalescing: 4 domains racing one cold input run exactly one search;
   - the warm (hit) response carries a plan bit-identical to the cold
     (miss) response, at the wire level;
   - plans are a deterministic function of (profile, device, input) —
     a 4-domain hammer produces the same plans as a 1-domain pass;
   - a bounded cache evicts exactly the least-recently-used plans.

   The timing metrics regress loosely (Timing kind); the invariants are
   Deterministic metrics and blocking shape checks. *)

module GP = Codegen.Gemm_params
module CP = Codegen.Conv_params

let device = Gpu.Device.p100

(* Small DeepBench-flavoured shapes: distinct enough to exercise the
   sharding, small enough that nine cold searches stay cheap. *)
let gemm_shapes =
  [ GP.input 256 64 256;
    GP.input 512 16 512;
    GP.input 128 128 128;
    GP.input ~b_trans:true 256 256 64;
    GP.input ~a_trans:true 192 64 192;
    GP.input ~dtype:Ptx.Types.F16 256 32 256 ]

let conv_shapes =
  [ CP.input ~n:4 ~c:16 ~k:32 ~p:12 ~q:12 ~r:3 ~s:3 ();
    CP.input ~n:2 ~c:32 ~k:32 ~p:8 ~q:8 ~r:3 ~s:3 ();
    CP.input ~n:8 ~c:8 ~k:16 ~p:14 ~q:14 ~r:5 ~s:5 ~pad:2 () ]

(* --- wire-level requests ------------------------------------------------ *)

let gemm_req ~id (i : GP.input) =
  Printf.sprintf
    {|{"op":"gemm","id":%d,"m":%d,"n":%d,"k":%d,"dtype":"%s","a_trans":%b,"b_trans":%b}|}
    id i.m i.n i.k (Ptx.Types.dtype_name i.dtype) i.a_trans i.b_trans

let conv_req ~id (i : CP.input) =
  Printf.sprintf
    {|{"op":"conv","id":%d,"n":%d,"c":%d,"k":%d,"p":%d,"q":%d,"r":%d,"s":%d,"stride":%d,"pad":%d,"dtype":"%s"}|}
    id i.n i.c i.k i.p i.q i.r i.s i.stride i.pad
    (Ptx.Types.dtype_name i.dtype)

let requests =
  List.mapi (fun id i -> gemm_req ~id i) gemm_shapes
  @ List.mapi
      (fun id i -> conv_req ~id:(id + List.length gemm_shapes) i)
      conv_shapes

let response_field line name =
  let json = Obs.Json.of_string line in
  Option.map Obs.Json.to_string (Obs.Json.member name json)

let cache_of line = Option.bind (Obs.Json.member "cache" (Obs.Json.of_string line)) Obs.Json.to_str

(* One daemon over a temp profile file (Serve.create loads from disk,
   like the binary does). *)
let with_daemon engine f =
  let path = Filename.temp_file "exp_serve" ".profile" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Tuner.Profile.save (Isaac.profile engine) path;
      let conv_path = Filename.temp_file "exp_serve_conv" ".profile" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove conv_path with Sys_error _ -> ())
        (fun () ->
          Tuner.Profile.save (Isaac.profile (Engines.conv device)) conv_path;
          match
            Serve.create ~gemm_profile:path ~conv_profile:conv_path ()
          with
          | Error msg -> failwith ("exp_serve: " ^ msg)
          | Ok srv -> f srv))

let percentile xs q =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  a.(min (n - 1) (int_of_float (float_of_int n *. q)))

let ms l = 1e3 *. l

(* --- phases ------------------------------------------------------------- *)

(* Cold + warm passes through the wire protocol. Returns latencies and
   whether every warm plan matched its cold plan byte-for-byte. *)
let run_load srv =
  let shoot line =
    let t0 = Unix.gettimeofday () in
    let response, _ = Serve.handle srv line in
    (Unix.gettimeofday () -. t0, response)
  in
  let cold = List.map shoot requests in
  let cold_plans =
    List.map (fun (_, r) -> Option.get (response_field r "plan")) cold
  in
  let warm_rounds = 20 in
  let warm = List.concat_map (fun _ -> List.map shoot requests)
      (List.init warm_rounds Fun.id)
  in
  let all_cold_missed =
    List.for_all (fun (_, r) -> cache_of r = Some "miss") cold
  in
  let warm_match =
    (* every warm response is a hit and re-serializes the identical plan *)
    List.for_all2
      (fun plan (_, r) ->
        cache_of r = Some "hit"
        && Option.get (response_field r "plan") = plan)
      (List.concat_map (fun _ -> cold_plans) (List.init warm_rounds Fun.id))
      warm
  in
  ( List.map fst cold, List.map fst warm, all_cold_missed, warm_match )

let fresh_gemm_engine ?cache_entries () =
  let e = Engines.gemm device in
  Isaac.of_profile ?cache_entries (Isaac.device e) (Isaac.profile e)

(* 4 domains race one cold input: exactly one search (miss), everyone
   gets the identical plan value. *)
let run_coalesce () =
  let engine = fresh_gemm_engine () in
  let input = GP.input 320 96 320 in
  let results =
    List.init 4 (fun _ ->
        Domain.spawn (fun () -> Isaac.plan_gemm_with_status engine input))
    |> List.map Domain.join
  in
  let count o =
    List.length
      (List.filter (fun (_, o') -> o' = (o : Isaac.Plan_cache.outcome)) results)
  in
  let plans_identical =
    match results with
    | (p0, _) :: rest -> List.for_all (fun (p, _) -> p = p0) rest
    | [] -> false
  in
  (count Miss, count Coalesced, count Hit, plans_identical)

let strip_phases = function
  | None -> None
  | Some (p : Isaac.plan) -> Some { p with phases = [] }

(* Plans must be a deterministic function of the input: a 1-domain pass
   and a 4-domain hammer over the same shapes yield bit-identical plans
   (modulo the wall-clock phase timings), and the hammer runs exactly
   one search per distinct input. *)
let run_hammer () =
  let solo = fresh_gemm_engine () in
  let solo_plans = List.map (Isaac.plan_gemm solo) gemm_shapes in
  let hammered = fresh_gemm_engine () in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            (* each domain walks the shapes in a different rotation so
               the race covers miss, coalesce and hit interleavings *)
            let n = List.length gemm_shapes in
            List.init n (fun j -> List.nth gemm_shapes ((j + d) mod n))
            |> List.iter (fun i -> ignore (Isaac.plan_gemm hammered i))))
  in
  List.iter Domain.join domains;
  let identical =
    List.for_all2
      (fun solo_p i ->
        strip_phases (Isaac.plan_gemm hammered i) = strip_phases solo_p)
      solo_plans gemm_shapes
  in
  let stats = Isaac.cache_stats hammered in
  (identical, stats.misses)

(* A cache bounded to 4 entries planning 6 shapes evicts exactly the 2
   least-recently-used plans: the last shape stays resident (hit), the
   first is gone (miss). *)
let run_eviction () =
  let engine = fresh_gemm_engine ~cache_entries:4 () in
  List.iter (fun i -> ignore (Isaac.plan_gemm engine i)) gemm_shapes;
  let evictions = (Isaac.cache_stats engine).evictions in
  let last_hit =
    snd (Isaac.plan_gemm_with_status engine (List.nth gemm_shapes 5)) = Hit
  in
  let first_missed =
    snd (Isaac.plan_gemm_with_status engine (List.hd gemm_shapes)) <> Hit
  in
  (evictions, last_hit, first_missed)

(* --- the experiment ----------------------------------------------------- *)

let run () =
  Reporting.print_header "Plan serving: latency and cache invariants";
  let cold, warm, all_cold_missed, warm_match =
    Reporting.time_section "serve load" (fun () ->
        with_daemon (Engines.gemm device) run_load)
  in
  let misses, coalesced, hits, coalesce_identical =
    Reporting.time_section "coalesce race" run_coalesce
  in
  let hammer_identical, hammer_misses =
    Reporting.time_section "4-domain hammer" run_hammer
  in
  let evictions, last_hit, first_missed =
    Reporting.time_section "bounded cache" run_eviction
  in
  let cp v = ms (percentile cold v) and wp v = ms (percentile warm v) in
  Util.Table.print
    ~header:[| "pass"; "requests"; "p50 ms"; "p95 ms"; "p99 ms" |]
    [ [| "cold"; string_of_int (List.length cold);
         Reporting.fmt_tf (cp 0.5); Reporting.fmt_tf (cp 0.95);
         Reporting.fmt_tf (cp 0.99) |];
      [| "warm"; string_of_int (List.length warm);
         Reporting.fmt_tf (wp 0.5); Reporting.fmt_tf (wp 0.95);
         Reporting.fmt_tf (wp 0.99) |] ];
  Reporting.save_csv "serve_latency"
    ~header:[ "cold_pass"; "p50_ms"; "p95_ms"; "p99_ms" ]
    [ [| 1.0; cp 0.5; cp 0.95; cp 0.99 |];
      [| 0.0; wp 0.5; wp 0.95; wp 0.99 |] ];
  let timing name v =
    Reporting.metric ~experiment:"serve" ~unit_:"ms"
      ~kind:Obs.Bench_report.Timing ~direction:Obs.Bench_report.Lower_better
      name v
  in
  timing "serve.cold_p50_ms" (cp 0.5);
  timing "serve.cold_p99_ms" (cp 0.99);
  timing "serve.warm_p50_ms" (wp 0.5);
  timing "serve.warm_p99_ms" (wp 0.99);
  let det name v =
    Reporting.metric ~experiment:"serve" ~unit_:"count"
      ~direction:Obs.Bench_report.Neutral name v
  in
  det "serve.coalesce_searches" (float_of_int misses);
  det "serve.hammer_misses" (float_of_int hammer_misses);
  det "serve.evictions" (float_of_int evictions);
  det "serve.warm_wire_match" (if warm_match then 1.0 else 0.0);
  det "serve.hammer_identical" (if hammer_identical then 1.0 else 0.0);
  [ Reporting.check
      ~claim:"coalescing: 4 racing domains run exactly one search"
      ~paper:"one resident cache, N clients"
      ~ours:(Printf.sprintf "%d miss / %d coalesced / %d hit" misses coalesced hits)
      ~pass:(misses = 1 && coalesced + hits = 3 && coalesce_identical);
    Reporting.check ~claim:"cold requests all miss; warm hits match cold bit-for-bit"
      ~paper:"plans cached after first query (§6)"
      ~ours:(Printf.sprintf "cold_missed=%b warm_match=%b" all_cold_missed warm_match)
      ~pass:(all_cold_missed && warm_match);
    Reporting.check ~claim:"4-domain hammer: one search per distinct input, plans = 1-domain plans"
      ~paper:"deterministic given profile+input"
      ~ours:(Printf.sprintf "misses=%d/%d identical=%b" hammer_misses
               (List.length gemm_shapes) hammer_identical)
      ~pass:(hammer_misses = List.length gemm_shapes && hammer_identical);
    Reporting.check ~claim:"bounded cache evicts exactly the LRU plans"
      ~paper:"entry-budgeted serving cache"
      ~ours:(Printf.sprintf "evictions=%d last_hit=%b first_missed=%b" evictions
               last_hit first_missed)
      ~pass:(evictions = 2 && last_hit && first_missed) ]
