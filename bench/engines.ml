(* Lazily tuned ISAAC engines, shared across experiments so each
   (device, operation) pair pays the auto-tuning pipeline exactly once per
   bench run. Seeds are fixed: the whole harness is deterministic for a
   given REPRO_SEED / REPRO_SCALE. *)

let samples () = Util.Env_config.scaled (Util.Env_config.int "ISAAC_TUNE_SAMPLES" 8000)
let epochs () = Util.Env_config.int "ISAAC_TUNE_EPOCHS" 30

let tune device op tag =
  let seed = Util.Env_config.seed () + Hashtbl.hash tag in
  let rng = Util.Rng.create seed in
  Reporting.time_section
    (Printf.sprintf "tune %s %s" device.Gpu.Device.name tag)
    (fun () ->
      Isaac.tune ~samples:(samples ()) ~epochs:(epochs ()) rng device ~op ())

let gemm_maxwell = lazy (tune Gpu.Device.gtx980ti `Gemm "gemm")
let gemm_pascal = lazy (tune Gpu.Device.p100 `Gemm "gemm")
let conv_maxwell = lazy (tune Gpu.Device.gtx980ti `Conv "conv")
let conv_pascal = lazy (tune Gpu.Device.p100 `Conv "conv")

let gemm (device : Gpu.Device.t) =
  match device.arch with
  | Maxwell -> Lazy.force gemm_maxwell
  | Pascal -> Lazy.force gemm_pascal

let conv (device : Gpu.Device.t) =
  match device.arch with
  | Maxwell -> Lazy.force conv_maxwell
  | Pascal -> Lazy.force conv_pascal

(* A deterministic rng for baseline measurements within experiments. *)
let fresh_rng tag = Util.Rng.create (Util.Env_config.seed () + 7919 + Hashtbl.hash tag)
