(* Benchmark harness entry point.

   With no arguments, reproduces every table and figure of the paper's
   evaluation in order, then runs the Bechamel micro-benchmarks and prints
   a consolidated shape-check summary. Individual experiments can be
   selected by name:

     dune exec bench/main.exe -- table1 fig6 sec8.3

   Scaling: REPRO_SCALE (default 1.0) multiplies all dataset/trial sizes;
   REPRO_SEED fixes the RNG; ISAAC_TUNE_SAMPLES / ISAAC_TUNE_EPOCHS /
   TABLE2_* / ISAAC_SEARCH_CAP fine-tune individual stages. *)

let experiments : (string * string * (unit -> Reporting.check list)) list =
  [ ("table1", "Table 1: generative-model acceptance", Exp_sampling.run);
    ("table2", "Table 2: MLP architecture MSE", Exp_mlp.run_table2);
    ("fig5", "Figure 5: MSE vs dataset size", Exp_mlp.run_fig5);
    ("table3", "Table 3: hardware platforms", Exp_gemm.run_table3);
    ("table4", "Table 4: GEMM evaluation tasks", Exp_tables.run_table4);
    ("table5", "Table 5: CONV evaluation tasks", Exp_tables.run_table5);
    ("fig6", "Figure 6: SGEMM, GTX 980 Ti", Exp_gemm.run_fig6);
    ("fig7", "Figure 7: SGEMM, Tesla P100", Exp_gemm.run_fig7);
    ("fig8", "Figure 8: H/DGEMM, Tesla P100", Exp_gemm.run_fig8);
    ("fig9", "Figure 9: SCONV, GTX 980 Ti", Exp_conv.run_fig9);
    ("fig10", "Figure 10: SCONV, Tesla P100", Exp_conv.run_fig10);
    ("fig11", "Figure 11: HCONV, Tesla P100", Exp_conv.run_fig11);
    ("table6", "Table 6: ISAAC parameter choices", Exp_gemm.run_table6);
    ("sec8.1", "Section 8.1: DeepBench analysis", Exp_gemm.run_analysis81);
    ("sec8.3", "Section 8.3: predication vs branches", Exp_ptx.run);
    ("ablations", "Ablations: top-k, optimizers, prior, energy", Exp_ablations.run);
    ("networks", "End-to-end network layer stacks", Exp_networks.run);
    ("attribution", "Perf_model cost terms vs interpreter counters", Exp_attribution.run);
    ("serve", "Plan serving: latency percentiles and cache invariants", Exp_serve.run);
    ("micro", "Bechamel micro-benchmarks", Micro.run) ]

let usage () =
  print_endline "usage: main.exe [experiment...]";
  print_endline "experiments:";
  List.iter (fun (key, desc, _) -> Printf.printf "  %-8s %s\n" key desc) experiments

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (match args with
   | [ "--help" ] | [ "-h" ] | [ "help" ] -> usage (); exit 0
   | _ -> ());
  let selected =
    match args with
    | [] -> experiments
    | keys ->
      List.map
        (fun key ->
          match List.find_opt (fun (k, _, _) -> k = key) experiments with
          | Some e -> e
          | None ->
            Printf.eprintf "unknown experiment %s\n" key;
            usage ();
            exit 2)
        keys
  in
  Printf.printf
    "ISAAC reproduction benchmark harness (seed %d, scale %.2f)\n%!"
    (Util.Env_config.seed ()) (Util.Env_config.scale ());
  let t0 = Unix.gettimeofday () in
  let sections =
    List.map
      (fun (key, _, run) ->
        let checks, wall = Reporting.timed_section key run in
        Reporting.print_checks checks;
        (key, wall, checks))
      selected
  in
  let all_checks =
    List.concat_map (fun (key, _, checks) -> List.map (fun c -> (key, c)) checks)
      sections
  in
  Reporting.print_header "Summary of shape checks";
  Util.Table.print
    ~header:[| "experiment"; "claim"; "paper"; "ours"; "verdict" |]
    (List.map
       (fun (key, c) ->
         [| key; c.Reporting.claim; c.paper; c.ours;
            (if c.pass then "OK" else "DIVERGES") |])
       all_checks);
  let total = List.length all_checks in
  let passed = List.length (List.filter (fun (_, c) -> c.Reporting.pass) all_checks) in
  Printf.printf "\n%d/%d shape checks passed; total wall time %.1fs\n" passed total
    (Unix.gettimeofday () -. t0);
  (* Machine-readable observatory record of this run: schema-versioned,
     regression-gated by isaac_bench_diff against a committed baseline. *)
  let report = Reporting.build_report ~argv:(Array.to_list Sys.argv) sections in
  ignore (Reporting.write_report report)
