(* Table 2 (cross-validation MSE of MLP architectures, with and without
   the log feature transform) and Figure 5 (cross-validation MSE vs
   training-set size).

   The paper trains on 200k samples and tests on 10k; our CPU-trained
   reproduction scales those down (REPRO_SCALE / TABLE2_* env overrides)
   while keeping the comparisons — depth vs width at fixed parameter
   count, and the necessity of the log transform — intact. *)

module Ds = Tuner.Dataset

(* Table 2 rows: hidden-layer architectures, paper MSE with-log values. *)
let architectures =
  [ ([| 64 |], "0.17", Some "1.2");
    ([| 512 |], "0.13", Some "1.0");
    ([| 32; 64; 32 |], "0.088", Some "0.80");
    ([| 64; 128; 64 |], "0.08", Some "0.75");
    ([| 32; 64; 128; 64; 32 |], "0.073", None);
    ([| 64; 128; 256; 128; 64 |], "0.067", None);
    ([| 64; 128; 192; 256; 192; 128; 64 |], "0.062", None) ]

let arch_name a =
  String.concat ", " (List.map string_of_int (Array.to_list a))

(* Slice the first [n] rows of a dataset (generation order is i.i.d.). *)
let slice (ds : Ds.t) start n =
  let idx = List.init n (fun i -> start + i) in
  { ds with
    features_log = Mlp.Train.rows ds.features_log idx;
    features_raw = Mlp.Train.rows ds.features_raw idx;
    tflops = Array.sub ds.tflops start n }

let table2_train () = Util.Env_config.scaled (Util.Env_config.int "TABLE2_TRAIN" 10_000)
let table2_test () = Util.Env_config.scaled (Util.Env_config.int "TABLE2_TEST" 2_000)
let table2_epochs () = Util.Env_config.int "TABLE2_EPOCHS" 12

let dataset = lazy begin
  let rng = Engines.fresh_rng "table2-data" in
  let n = table2_train () + table2_test () in
  Reporting.time_section
    (Printf.sprintf "generate %d GEMM samples (P100)" n)
    (fun () -> Ds.generate_gemm rng Gpu.Device.p100 ~n)
end

let train_and_score ~arch ~log_features ~train ~test =
  let rng = Engines.fresh_rng ("table2-" ^ arch_name arch) in
  let profile =
    Tuner.Profile.train ~arch ~epochs:(table2_epochs ()) ~log_features rng train
  in
  (profile, Tuner.Profile.mse profile test)

let run_table2 () =
  Reporting.print_header "Table 2: cross-validation MSE per MLP architecture";
  let ds = Lazy.force dataset in
  let n_train = table2_train () and n_test = table2_test () in
  let train = slice ds 0 n_train in
  let test = slice ds n_train n_test in
  let results =
    List.map
      (fun (arch, paper_mse, paper_nolog) ->
        let profile, mse = train_and_score ~arch ~log_features:true ~train ~test in
        let nolog_mse =
          match paper_nolog with
          | None -> None
          | Some _ ->
            let _, m = train_and_score ~arch ~log_features:false ~train ~test in
            Some m
        in
        (arch, Mlp.Network.num_weights (Tuner.Profile.(profile.net)), mse, nolog_mse,
         paper_mse, paper_nolog))
      architectures
  in
  Util.Table.print
    ~header:
      [| "hidden layers"; "#weights"; "MSE"; "MSE (no log)"; "paper MSE";
         "paper (no log)" |]
    (List.map
       (fun (arch, weights, mse, nolog, paper, paper_nolog) ->
         [| arch_name arch; string_of_int weights; Printf.sprintf "%.4f" mse;
            (match nolog with Some m -> Printf.sprintf "%.4f" m | None -> "-");
            paper; (match paper_nolog with Some p -> p | None -> "-") |])
       results);
  let mse_at i = let _, _, m, _, _, _ = List.nth results i in m in
  let shallow = mse_at 0 and deep = mse_at 6 in
  Reporting.metric ~experiment:"table2" ~unit_:"mse"
    ~direction:Obs.Bench_report.Lower_better "table2.best_mse" deep;
  Reporting.metric ~experiment:"table2" ~unit_:"ratio" "table2.depth_gain"
    (shallow /. deep);
  let log_small, nolog_big =
    let _, _, m, nolog, _, _ = List.nth results 2 in
    (m, match nolog with Some x -> x | None -> Float.nan)
  in
  [ Reporting.check_min ~claim:"deep beats shallow (MSE 64 / MSE 7-layer)"
      ~paper:"0.17 vs 0.062 (2.7x)" ~value:(shallow /. deep) ~at_least:1.15;
    Reporting.check_min ~claim:"log transform required (no-log / log, 32-64-32)"
      ~paper:"0.80 vs 0.088 (9x)" ~value:(nolog_big /. log_small) ~at_least:2.0 ]

let fig5_sizes () =
  List.map Util.Env_config.scaled [ 1000; 2000; 5000; 10000; 20000; 40000 ]

let run_fig5 () =
  Reporting.print_header "Figure 5: cross-validation MSE vs dataset size";
  let sizes = fig5_sizes () in
  let max_size = List.fold_left max 0 sizes in
  let n_test = table2_test () in
  let rng = Engines.fresh_rng "fig5-data" in
  let ds =
    Reporting.time_section
      (Printf.sprintf "generate %d GEMM samples (P100)" (max_size + n_test))
      (fun () -> Ds.generate_gemm rng Gpu.Device.p100 ~n:(max_size + n_test))
  in
  let test = slice ds max_size n_test in
  let arch = [| 32; 64; 128; 64; 32 |] in
  let mses =
    List.map
      (fun n ->
        let train = slice ds 0 n in
        let _, mse = train_and_score ~arch ~log_features:true ~train ~test in
        Printf.printf "  %6d samples -> MSE %.4f\n%!" n mse;
        (n, mse))
      sizes
  in
  Util.Table.print
    ~header:[| "train samples"; "cross-validation MSE" |]
    (List.map (fun (n, m) -> [| string_of_int n; Printf.sprintf "%.4f" m |]) mses);
  Reporting.save_csv "fig5_mse_vs_dataset_size"
    ~header:[ "train_samples"; "cross_validation_mse" ]
    (List.map (fun (n, m) -> [| float_of_int n; m |]) mses);
  let mse_at i = snd (List.nth mses i) in
  let first = mse_at 0 in
  let last = mse_at (List.length mses - 1) in
  Reporting.metric ~experiment:"fig5" ~unit_:"mse"
    ~direction:Obs.Bench_report.Lower_better "fig5.final_mse" last;
  let second_last = mse_at (List.length mses - 2) in
  (* Figure 5 plots MSE against dataset size: the curve is steep at first
     and flat at the end. Check the flattening in the same absolute terms
     the plot shows: the final doubling recovers a small fraction of what
     the first doubling did. *)
  let first_gain = first -. mse_at 1 in
  let last_gain = second_last -. last in
  [ Reporting.check_min ~claim:"more data helps (MSE smallest / largest set)"
      ~paper:"0.16 -> 0.06" ~value:(first /. last) ~at_least:1.1;
    Reporting.check ~claim:"curve flattens (last doubling's gain << first's)"
      ~paper:"flat beyond 150k samples"
      ~ours:(Printf.sprintf "dMSE %.3f -> %.3f" first_gain last_gain)
      ~pass:(last_gain < 0.35 *. first_gain) ]
