(* Ablations of ISAAC's design choices, beyond the paper's own tables:

   1. top-k device re-benchmarking (§6: "re-evaluate them on the target
      GPU to smooth out the inherent noise of our predictive model");
   2. the discrete optimizer behind runtime inference (§6 lists simulated
      annealing and genetic algorithms as drop-in alternatives to the
      exhaustive search it uses);
   3. the Dirichlet prior strength in the generative model (§4.1's
      alpha = 100);
   4. tuning for energy efficiency instead of speed (§4.1 lists Joules
      and FLOPS/W as admissible regression targets). *)

module GP = Codegen.Gemm_params

let shapes =
  [ ("LINPACK 2048", GP.input ~b_trans:true 2048 2048 2048);
    ("DeepBench-F 16", GP.input 2560 16 2560);
    ("ICA 64", GP.input ~b_trans:true 64 64 60000) ]

let run_topk () =
  Printf.printf "\n-- top-k re-benchmarking (fraction of oracle performance) --\n";
  let device = Gpu.Device.p100 in
  let engine = Engines.gemm device in
  let profile = Isaac.profile engine in
  let ks = [ 1; 5; 20; 100 ] in
  let rows =
    List.map
      (fun (name, input) ->
        let oracle_tf =
          (snd (Option.get (Tuner.Search.oracle_gemm device input))).tflops
        in
        let cells =
          List.map
            (fun k ->
              let rng = Engines.fresh_rng (Printf.sprintf "topk-%s-%d" name k) in
              let r =
                Option.get
                  (Tuner.Search.exhaustive_gemm ~top_k:k rng device ~profile input)
              in
              r.best_measurement.tflops /. oracle_tf)
            ks
        in
        (name, cells))
      shapes
  in
  Util.Table.print
    ~header:(Array.of_list ("problem" :: List.map (Printf.sprintf "top-%d") ks))
    (List.map
       (fun (name, cells) ->
         Array.of_list (name :: List.map (fun v -> Printf.sprintf "%.0f%%" (100. *. v)) cells))
       rows);
  let avg k_idx =
    Util.Stats.mean (Array.of_list (List.map (fun (_, cs) -> List.nth cs k_idx) rows))
  in
  [ Reporting.check ~claim:"re-benchmarking the top-100 beats trusting the model (top-1)"
      ~paper:"the point of §6's re-evaluation step"
      ~ours:(Printf.sprintf "%.0f%% -> %.0f%% of oracle" (100. *. avg 0) (100. *. avg 3))
      ~pass:(avg 3 >= avg 0 -. 0.01);
    Reporting.check_min ~claim:"top-100 reaches most of the oracle"
      ~paper:"exhaustive search is near-optimal" ~value:(avg 3) ~at_least:0.85 ]

let run_optimizers () =
  Printf.printf "\n-- discrete optimizers at a 2000-evaluation budget --\n";
  let device = Gpu.Device.p100 in
  let profile = Isaac.profile (Engines.gemm device) in
  let space = Tuner.Config_space.gemm in
  let results =
    List.map
      (fun (name, input) ->
        let objective cfg_array =
          if Tuner.Dataset.gemm_legal device input cfg_array then
            let f = Tuner.Features.gemm_features ~log:true input cfg_array in
            let x = Mlp.Tensor.of_array ~rows:1 ~cols:Tuner.Features.dim f in
            Some (Tuner.Profile.predict_std_batch profile x).(0)
          else None
        in
        (* Measured speed of the config each optimizer settles on. *)
        let measured cfg_array =
          let cfg = GP.config_of_array cfg_array in
          match Gpu.Perf_model.predict device (GP.cost input cfg) with
          | Some r -> r.tflops
          | None -> 0.0
        in
        let budget = 2000 in
        let run tag f =
          let rng = Engines.fresh_rng ("optim-" ^ tag ^ name) in
          match f rng with
          | Some (o : Tuner.Optim.outcome) -> measured o.config
          | None -> 0.0
        in
        let rand = run "rand" (fun rng -> Tuner.Optim.random_search rng space objective ~budget) in
        let sa = run "sa" (fun rng -> Tuner.Optim.simulated_annealing rng space objective ~budget) in
        let ga = run "ga" (fun rng -> Tuner.Optim.genetic rng space objective ~budget) in
        let exhaustive =
          let rng = Engines.fresh_rng ("optim-ex" ^ name) in
          (Option.get (Tuner.Search.exhaustive_gemm ~top_k:100 rng device ~profile input))
            .best_measurement.tflops
        in
        (name, rand, sa, ga, exhaustive))
      shapes
  in
  Util.Table.print
    ~header:[| "problem"; "random"; "sim. annealing"; "genetic"; "exhaustive+top100" |]
    (List.map
       (fun (name, r, s, g, e) ->
         [| name; Printf.sprintf "%.2f" r; Printf.sprintf "%.2f" s;
            Printf.sprintf "%.2f" g; Printf.sprintf "%.2f" e |])
       results);
  let frac pick =
    Util.Stats.geomean
      (Array.of_list
         (List.map (fun (_, r, s, g, e) -> Float.max 0.01 (pick (r, s, g) /. e)) results))
  in
  [ Reporting.check_min
      ~claim:"annealing at 2k evals gets close to exhaustive (60k+ evals)"
      ~paper:"§6: SA/GA are admissible alternatives"
      ~value:(frac (fun (_, s, _) -> s)) ~at_least:0.5;
    Reporting.check_min ~claim:"genetic similarly competitive"
      ~paper:"§6" ~value:(frac (fun (_, _, g) -> g)) ~at_least:0.5 ]

let run_alpha () =
  Printf.printf "\n-- Dirichlet prior strength in the generative model --\n";
  let device = Gpu.Device.gtx980ti in
  let space = Tuner.Config_space.table1 in
  let rows =
    List.map
      (fun alpha ->
        let rng = Engines.fresh_rng (Printf.sprintf "alpha-%g" alpha) in
        let legal cfg =
          Tuner.Dataset.gemm_legal device (Tuner.Dataset.random_gemm_input rng) cfg
        in
        let s =
          Tuner.Sampler.fit ~alpha ~warmup:(Util.Env_config.scaled 300_000) rng space
            ~legal
        in
        let acc =
          Tuner.Sampler.acceptance_rate ~trials:(Util.Env_config.scaled 10_000)
            ~sample:(fun () -> Tuner.Sampler.sample rng s)
            ~legal
        in
        (alpha, acc))
      [ 1.0; 100.0; 100_000.0 ]
  in
  Util.Table.print
    ~header:[| "alpha"; "acceptance" |]
    (List.map
       (fun (a, acc) -> [| Printf.sprintf "%g" a; Util.Table.fmt_pct acc |])
       rows);
  let acc_of a = List.assoc a rows in
  [ Reporting.check ~claim:"a huge prior degenerates to uniform sampling"
      ~paper:"alpha=100 chosen so probabilities never hit zero"
      ~ours:(Printf.sprintf "%.1f%% vs %.1f%%" (100. *. acc_of 100.0)
               (100. *. acc_of 100_000.0))
      ~pass:(acc_of 100.0 > 2.0 *. acc_of 100_000.0) ]

let run_energy () =
  Printf.printf "\n-- speed-optimal vs efficiency-optimal kernels (P100, fp32) --\n";
  let device = Gpu.Device.p100 in
  let rows =
    List.map
      (fun (name, input) ->
        let configs = Tuner.Search.legal_gemm_configs device input in
        let scored =
          List.filter_map
            (fun cfg ->
              Option.map
                (fun (r : Gpu.Perf_model.report) -> (cfg, r))
                (Gpu.Perf_model.predict device (GP.cost input cfg)))
            configs
        in
        let best_by f =
          List.fold_left
            (fun acc (cfg, r) ->
              match acc with
              | Some (_, br) when f br >= f r -> acc
              | _ -> Some (cfg, r))
            None scored
        in
        let speed = Option.get (best_by (fun r -> r.Gpu.Perf_model.tflops)) in
        let eff = Option.get (best_by (Gpu.Power.gflops_per_watt device)) in
        (name, speed, eff))
      shapes
  in
  Util.Table.print
    ~header:
      [| "problem"; "fastest"; "TF"; "GF/W"; "most efficient"; "TF"; "GF/W" |]
    (List.map
       (fun (name, (sc, sr), (ec, er)) ->
         [| name; GP.describe sc; Printf.sprintf "%.2f" sr.Gpu.Perf_model.tflops;
            Printf.sprintf "%.1f" (Gpu.Power.gflops_per_watt Gpu.Device.p100 sr);
            GP.describe ec; Printf.sprintf "%.2f" er.Gpu.Perf_model.tflops;
            Printf.sprintf "%.1f" (Gpu.Power.gflops_per_watt Gpu.Device.p100 er) |])
       rows);
  let ok =
    List.for_all
      (fun (_, (_, sr), (_, er)) ->
        Gpu.Power.gflops_per_watt device er >= Gpu.Power.gflops_per_watt device sr)
      rows
  in
  [ Reporting.check ~claim:"efficiency-targeted tuning finds at-least-as-efficient kernels"
      ~paper:"§4.1: y may be FLOPS, Joules, FLOPS/W" ~ours:(if ok then "holds" else "violated")
      ~pass:ok ]

(* Why implicit GEMM: the explicit IM2COL+GEMM algorithm materializes the
   NPQ x CRS patch matrix, reading and writing it through DRAM before the
   product even starts. Compare that materialization traffic against the
   implicit kernel's whole-run DRAM traffic on Table 5 layers. *)
let run_conv_algorithms () =
  Printf.printf "\n-- conv algorithms: implicit GEMM vs explicit IM2COL+GEMM --\n";
  let cfg = { GP.ms = 8; ns = 4; ks = 1; ml = 64; nl = 32; u = 16; kl = 1; kg = 1;
              vec = 2; db = 2 } in
  let rows =
    List.filter_map
      (fun label ->
        let task = Workloads.Conv_suites.find label Ptx.Types.F32 in
        let i = task.input in
        if not (Codegen.Conv_params.structurally_legal i cfg) then None
        else begin
          let cost = Codegen.Conv_params.cost i cfg in
          let implicit_bytes = cost.load_a_bytes +. cost.load_b_bytes +. cost.store_bytes in
          let patch =
            float_of_int (Codegen.Conv_params.npq i)
            *. float_of_int (Codegen.Conv_params.crs i) *. 4.0
          in
          (* write the patch matrix once, then the GEMM reads it like a
             dense A; the image itself is read once to build it. *)
          let explicit_bytes = implicit_bytes +. (2.0 *. patch) in
          Some (label, implicit_bytes /. 1e6, explicit_bytes /. 1e6,
                explicit_bytes /. implicit_bytes)
        end)
      [ "Conv1"; "Conv4"; "Conv7"; "Conv8"; "Conv13"; "Conv14" ]
  in
  Util.Table.print
    ~header:[| "layer"; "implicit DRAM (MB)"; "explicit DRAM (MB)"; "overhead" |]
    (List.map
       (fun (l, a, b, r) ->
         [| l; Printf.sprintf "%.1f" a; Printf.sprintf "%.1f" b;
            Printf.sprintf "%.2fx" r |])
       rows);
  let worst = List.fold_left (fun acc (_, _, _, r) -> Float.max acc r) 1.0 rows in
  [ Reporting.check_min
      ~claim:"explicit im2col always adds DRAM traffic (worst layer)"
      ~paper:"motivates IMPLICIT_PRECOMP_GEMM" ~value:worst ~at_least:1.05 ]

(* Do the three scoreboard-derived features (critical path, stall
   fraction, register pressure — Features ~schedule:true) change the
   regression's held-out MSE? Fig. 5 methodology on a small labeled set:
   same samples, same architecture and epochs, 16 vs 19 features. The
   gate is a non-degradation bound, not an improvement claim: the static
   schedule is itself a function of the tuning parameters, so the paper's
   16 features may already carry most of the signal. *)
let run_schedule_features () =
  Printf.printf "\n-- schedule-aware features: 16 paper features vs +3 scoreboard --\n";
  let device = Gpu.Device.p100 in
  (* Floors keep the comparison out of the tiny-sample regime where the
     three extra dimensions read as pure overfitting noise. *)
  let n_train =
    max 3000 (Util.Env_config.scaled (Util.Env_config.int "SCHED_FEAT_TRAIN" 6000))
  in
  let n_test =
    max 750 (Util.Env_config.scaled (Util.Env_config.int "SCHED_FEAT_TEST" 1500))
  in
  let n = n_train + n_test in
  let rng = Engines.fresh_rng "sched-feat" in
  let sampler = Tuner.Dataset.fit_gemm_sampler rng device in
  let samples =
    Reporting.time_section
      (Printf.sprintf "label %d GEMM samples (P100)" n)
      (fun () ->
        Array.init n (fun _ ->
            let rec draw () =
              let input = Tuner.Dataset.random_gemm_input rng in
              let legal = Tuner.Dataset.gemm_legal device input in
              match
                Tuner.Sampler.sample_verified rng sampler ~legal
                  ~verify:(fun _ -> true)
              with
              | None -> draw ()
              | Some cfg -> (
                  let c = GP.config_of_array cfg in
                  match
                    Gpu.Executor.measure ~noise:Gpu.Executor.default_noise rng
                      device (GP.cost input c)
                  with
                  | Some m when m.tflops > 0.0 -> (input, cfg, m.tflops)
                  | _ -> draw ())
            in
            draw ()))
  in
  let dataset ~schedule dim =
    let flog = Mlp.Tensor.create n dim and fraw = Mlp.Tensor.create n dim in
    Array.iteri
      (fun row (input, cfg, _) ->
        let put t f = Array.blit f 0 t.Mlp.Tensor.data (row * dim) dim in
        put flog (Tuner.Features.gemm_features ~schedule ~log:true input cfg);
        put fraw (Tuner.Features.gemm_features ~schedule ~log:false input cfg))
      samples;
    { Tuner.Dataset.op = `Gemm; device = device.Gpu.Device.name;
      features_log = flog; features_raw = fraw;
      tflops = Array.map (fun (_, _, t) -> t) samples }
  in
  let slice (ds : Tuner.Dataset.t) start len =
    let idx = List.init len (fun i -> start + i) in
    { ds with
      features_log = Mlp.Train.rows ds.features_log idx;
      features_raw = Mlp.Train.rows ds.features_raw idx;
      tflops = Array.sub ds.tflops start len }
  in
  let epochs = Util.Env_config.int "SCHED_FEAT_EPOCHS" 12 in
  let mse_of tag ds =
    let train = slice ds 0 n_train and test = slice ds n_train n_test in
    let rng = Engines.fresh_rng ("sched-feat-train-" ^ tag) in
    let profile = Tuner.Profile.train ~epochs rng train in
    Tuner.Profile.mse profile test
  in
  let mse16 = mse_of "base" (dataset ~schedule:false Tuner.Features.dim) in
  let mse19 =
    mse_of "sched" (dataset ~schedule:true Tuner.Features.schedule_dim)
  in
  Util.Table.print
    ~header:[| "features"; "held-out MSE" |]
    [ [| "16 (paper)"; Printf.sprintf "%.4f" mse16 |];
      [| "19 (+schedule)"; Printf.sprintf "%.4f" mse19 |] ];
  Reporting.metric ~experiment:"ablations" ~unit_:"mse"
    ~direction:Obs.Bench_report.Lower_better "ablations.sched_features_mse"
    mse19;
  Reporting.metric ~experiment:"ablations" ~unit_:"ratio"
    "ablations.sched_features_gain" (mse16 /. mse19);
  [ Reporting.check
      ~claim:"schedule features do not degrade held-out MSE (19 vs 16)"
      ~paper:"n/a (extension beyond Table 2)"
      ~ours:(Printf.sprintf "%.4f vs %.4f" mse19 mse16)
      ~pass:(mse19 <= (1.25 *. mse16) +. 0.01) ]

let run () =
  Reporting.print_header "Ablations: top-k, optimizers, Dirichlet prior, energy";
  run_topk () @ run_optimizers () @ run_alpha () @ run_energy ()
  @ run_conv_algorithms () @ run_schedule_features ()
