(* GEMM experiments: Table 3 (platforms), Figures 6-8 (SGEMM on the
   GTX 980 Ti, SGEMM and H/DGEMM on the P100), Table 6 (parameter choices)
   and the §8.1 analysis table. *)

module GP = Codegen.Gemm_params
module WS = Workloads.Gemm_suites

let run_table3 () =
  Reporting.print_header "Table 3: test platforms";
  Util.Table.print
    ~header:
      [| "property"; Gpu.Device.gtx980ti.name; Gpu.Device.p100.name |]
    (let d1 = Gpu.Device.gtx980ti and d2 = Gpu.Device.p100 in
     let row name f = [| name; f d1; f d2 |] in
     [ row "micro-architecture" (fun d ->
           match d.Gpu.Device.arch with Maxwell -> "GM200" | Pascal -> "GP100");
       row "CUDA cores" (fun d -> string_of_int (d.sm_count * d.cores_per_sm));
       row "clock (GHz, sustained)" (fun d -> Printf.sprintf "%.3f" d.clock_ghz);
       row "fp32 peak (TFLOPS)" (fun d ->
           Printf.sprintf "%.1f" (Gpu.Device.peak_tflops d F32 ~vectorized:false));
       row "fp64 peak (TFLOPS)" (fun d ->
           Printf.sprintf "%.1f" (Gpu.Device.peak_tflops d F64 ~vectorized:false));
       row "fp16 peak (TFLOPS)" (fun d ->
           Printf.sprintf "%.1f" (Gpu.Device.peak_tflops d F16 ~vectorized:true));
       row "memory bandwidth (GB/s)" (fun d -> Printf.sprintf "%.0f" d.dram_bw_gbs);
       row "L2 (KB)" (fun d -> string_of_int (d.l2_bytes / 1024));
       row "shared/SM (KB)" (fun d -> string_of_int (d.shared_per_sm / 1024)) ]);
  [ Reporting.check ~claim:"fp32 peaks match Table 3" ~paper:"5.8 / 9.7"
      ~ours:
        (Printf.sprintf "%.1f / %.1f"
           (Gpu.Device.peak_tflops Gpu.Device.gtx980ti F32 ~vectorized:false)
           (Gpu.Device.peak_tflops Gpu.Device.p100 F32 ~vectorized:false))
      ~pass:
        (Float.abs (Gpu.Device.peak_tflops Gpu.Device.gtx980ti F32 ~vectorized:false -. 5.8)
         < 0.15
        && Float.abs (Gpu.Device.peak_tflops Gpu.Device.p100 F32 ~vectorized:false -. 9.7)
           < 0.15) ]

type row = {
  task : WS.task;
  isaac : float;
  cublas : float;       (* heuristics *)
  cublas_best : float;  (* best-kernel bypass *)
  config : GP.config;
}

let run_suite device tasks =
  let engine = Engines.gemm device in
  let rng = Engines.fresh_rng ("gemm-suite-" ^ device.Gpu.Device.name) in
  List.map
    (fun (task : WS.task) ->
      let plan =
        match Isaac.plan_gemm engine task.input with
        | Some p -> p
        | None -> failwith ("no ISAAC plan for " ^ task.label)
      in
      let cublas =
        match Baselines.Cublas.heuristic rng device task.input with
        | Some (_, m) -> m.tflops
        | None -> 0.0
      in
      let cublas_best =
        match Baselines.Cublas.best_kernel rng device task.input with
        | Some (_, m) -> m.tflops
        | None -> 0.0
      in
      Printf.printf "  %-14s %-5s isaac %6.2f | cublas %6.2f | best-kernel %6.2f  (%s)\n%!"
        task.group task.label plan.measurement.tflops cublas cublas_best
        (GP.describe plan.config);
      { task; isaac = plan.measurement.tflops; cublas; cublas_best;
        config = plan.config })
    tasks

let print_rows ~best_kernel rows =
  let header =
    if best_kernel then
      [| "suite"; "size"; "ISAAC"; "cuBLAS (heuristics)"; "cuBLAS (best kernel)";
         "vs heur"; "vs best" |]
    else [| "suite"; "size"; "ISAAC"; "cuBLAS"; "speedup" |]
  in
  Util.Table.print ~header
    (List.map
       (fun r ->
         let sp b = Printf.sprintf "%.2fx" (r.isaac /. Float.max 1e-9 b) in
         if best_kernel then
           [| r.task.group; r.task.label; Reporting.fmt_tf r.isaac;
              Reporting.fmt_tf r.cublas; Reporting.fmt_tf r.cublas_best;
              sp r.cublas; sp r.cublas_best |]
         else
           [| r.task.group; r.task.label; Reporting.fmt_tf r.isaac;
              Reporting.fmt_tf r.cublas; sp r.cublas |])
       rows)

let save_series name rows =
  Reporting.save_csv name
    ~header:[ "isaac_tflops"; "cublas_tflops"; "cublas_best_tflops" ]
    (List.map (fun r -> [| r.isaac; r.cublas; r.cublas_best |]) rows)

let chart ~best_kernel rows =
  let series =
    if best_kernel then [ "ISAAC"; "cuBLAS (heuristics)"; "cuBLAS (best kernel)" ]
    else [ "ISAAC"; "cuBLAS" ]
  in
  Reporting.bar_chart ~series
    (List.map
       (fun r ->
         ( Printf.sprintf "%s %s" r.task.WS.group r.task.label,
           if best_kernel then [ r.isaac; r.cublas; r.cublas_best ]
           else [ r.isaac; r.cublas ] ))
       rows)

let find rows group label =
  List.find (fun r -> r.task.WS.group = group && r.task.label = label) rows

let geomean_speedup rows baseline =
  Util.Stats.geomean
    (Array.of_list (List.map (fun r -> r.isaac /. Float.max 1e-9 (baseline r)) rows))

(* Per-suite aggregates for the benchmark report: deterministic for a
   fixed seed/scale, so any drift flags a behaviour change in the
   tuner/model stack rather than machine noise. *)
let record_metrics fig rows =
  Reporting.metric ~experiment:fig ~unit_:"tflops"
    (fig ^ ".isaac_geomean_tflops")
    (Util.Stats.geomean (Array.of_list (List.map (fun r -> r.isaac) rows)));
  Reporting.metric ~experiment:fig ~unit_:"ratio"
    (fig ^ ".geomean_speedup_vs_cublas")
    (geomean_speedup rows (fun r -> r.cublas))

let run_fig6 () =
  Reporting.print_header "Figure 6: SGEMM on the GTX 980 Ti (ISAAC vs cuBLAS)";
  let rows = run_suite Gpu.Device.gtx980ti (WS.fp32_suite ~mk:1760) in
  print_rows ~best_kernel:false rows;
  save_series "fig6_sgemm_gtx980ti" rows;
  chart ~best_kernel:false rows;
  record_metrics "fig6" rows;
  let r = find rows in
  [ Reporting.check_min ~claim:"never slower than cuBLAS (geomean speedup)"
      ~paper:">= 1" ~value:(geomean_speedup rows (fun r -> r.cublas)) ~at_least:1.0;
    Reporting.check_min ~claim:"LINPACK 512 speedup" ~paper:"~1.25"
      ~value:((r "LINPACK" "512").isaac /. (r "LINPACK" "512").cublas)
      ~at_least:1.05;
    Reporting.check_range ~claim:"LINPACK 2048 parity" ~paper:"~1.0"
      ~value:((r "LINPACK" "2048").isaac /. (r "LINPACK" "2048").cublas)
      ~lo:0.9 ~hi:1.6;
    Reporting.check_min ~claim:"DeepBench-F N=16 speedup" ~paper:"~1.8"
      ~value:((r "DeepBench [F]" "16").isaac /. (r "DeepBench [F]" "16").cublas)
      ~at_least:1.3;
    Reporting.check ~claim:"DeepBench gains shrink as N grows"
      ~paper:"vanish at N=128"
      ~ours:
        (Printf.sprintf "%.2fx @16 vs %.2fx @128"
           ((r "DeepBench [F]" "16").isaac /. (r "DeepBench [F]" "16").cublas)
           ((r "DeepBench [F]" "128").isaac /. (r "DeepBench [F]" "128").cublas))
      ~pass:
        ((r "DeepBench [F]" "16").isaac /. (r "DeepBench [F]" "16").cublas
        > (r "DeepBench [F]" "128").isaac /. (r "DeepBench [F]" "128").cublas);
    Reporting.check_min ~claim:"ICA heuristic failure (speedup vs heuristics)"
      ~paper:"order of magnitude"
      ~value:((r "ICA" "32").isaac /. Float.max 1e-9 (r "ICA" "32").cublas)
      ~at_least:3.0;
    Reporting.check_min ~claim:"Blocked SVD speedup" ~paper:"~1.1"
      ~value:(geomean_speedup
                (List.filter (fun r -> r.task.WS.group = "Blocked SVD") rows)
                (fun r -> r.cublas))
      ~at_least:1.0 ]

let run_fig7 () =
  Reporting.print_header
    "Figure 7: SGEMM on the Tesla P100 (ISAAC vs cuBLAS heuristics vs best kernel)";
  let rows = run_suite Gpu.Device.p100 (WS.fp32_suite ~mk:2560) in
  print_rows ~best_kernel:true rows;
  save_series "fig7_sgemm_p100" rows;
  chart ~best_kernel:true rows;
  record_metrics "fig7" rows;
  let r = find rows in
  [ Reporting.check_min ~claim:"never slower than cuBLAS heuristics (geomean)"
      ~paper:">= 1" ~value:(geomean_speedup rows (fun r -> r.cublas)) ~at_least:1.0;
    Reporting.check_min ~claim:"DeepBench-F N=16 vs best kernel" ~paper:"~1.8"
      ~value:((r "DeepBench [F]" "16").isaac /. (r "DeepBench [F]" "16").cublas_best)
      ~at_least:1.3;
    Reporting.check_min ~claim:"DeepBench-B N=16 vs best kernel" ~paper:"~1.65"
      ~value:((r "DeepBench [B]" "16").isaac /. (r "DeepBench [B]" "16").cublas_best)
      ~at_least:1.2;
    Reporting.check_range ~claim:"ICA vs best kernel (heuristics bypassed)"
      ~paper:"~1.05-1.1"
      ~value:(geomean_speedup
                (List.filter (fun r -> r.task.WS.group = "ICA") rows)
                (fun r -> r.cublas_best))
      ~lo:1.0 ~hi:5.0;
    Reporting.check_range ~claim:"LINPACK 2048 vs best kernel" ~paper:"~1.0"
      ~value:((r "LINPACK" "2048").isaac /. (r "LINPACK" "2048").cublas_best)
      ~lo:0.9 ~hi:1.6 ]

let run_fig8 () =
  Reporting.print_header
    "Figure 8: H/DGEMM on the Tesla P100 (fp16 LINPACK+DeepBench, fp64 ICA+SVD)";
  let rows = run_suite Gpu.Device.p100 (WS.mixed_suite ~mk:2560) in
  print_rows ~best_kernel:true rows;
  save_series "fig8_hdgemm_p100" rows;
  chart ~best_kernel:true rows;
  record_metrics "fig8" rows;
  let r = find rows in
  let deepbench_fp16 =
    List.filter
      (fun x ->
        x.task.WS.group = "DeepBench [F]" || x.task.WS.group = "DeepBench [B]")
      rows
  in
  [ Reporting.check_min ~claim:"fp16 DeepBench vs cuBLAS best kernel (geomean)"
      ~paper:"2.5-3x"
      ~value:(geomean_speedup deepbench_fp16 (fun r -> r.cublas_best))
      ~at_least:1.8;
    Reporting.check_range ~claim:"fp16 LINPACK 2048 vs best kernel (near-optimal cuBLAS)"
      ~paper:"~1.0"
      ~value:((r "LINPACK" "2048").isaac /. (r "LINPACK" "2048").cublas_best)
      ~lo:0.85 ~hi:1.7;
    Reporting.check_min ~claim:"fp64 ICA speedup (geomean vs heuristics)"
      ~paper:"~1.4"
      ~value:(geomean_speedup
                (List.filter (fun x -> x.task.WS.group = "ICA") rows)
                (fun r -> r.cublas))
      ~at_least:1.2;
    Reporting.check_min ~claim:"fp64 SVD speedup (geomean vs heuristics)"
      ~paper:"~1.15"
      ~value:(geomean_speedup
                (List.filter (fun x -> x.task.WS.group = "Blocked SVD") rows)
                (fun r -> r.cublas))
      ~at_least:1.0 ]

let run_table6 () =
  Reporting.print_header "Table 6: parameterization choices of ISAAC (P100, fp32)";
  let engine = Engines.gemm Gpu.Device.p100 in
  let chosen =
    List.map
      (fun (name, input) ->
        let plan = Option.get (Isaac.plan_gemm engine input) in
        (name, input, plan.config))
      WS.table6_problems
  in
  Util.Table.print
    ~header:[| "problem"; "Ms"; "Ns"; "ML"; "NL"; "U"; "Ks"; "KL"; "KG" |]
    (List.map
       (fun (name, _, c) ->
         [| name; string_of_int c.GP.ms; string_of_int c.ns; string_of_int c.ml;
            string_of_int c.nl; string_of_int c.u; string_of_int c.ks;
            string_of_int c.kl; string_of_int c.kg |])
       chosen);
  let cfg_of name =
    let _, _, c = List.find (fun (n, _, _) -> n = name) chosen in
    c
  in
  let tile_area c = c.GP.ml * c.nl in
  let small = cfg_of "LINPACK (512)" and big = cfg_of "LINPACK (2048)" in
  let ica32 = cfg_of "ICA (32)" and ica256 = cfg_of "ICA (256)" in
  let dbf16 = cfg_of "DeepBench-F (16)" and dbb16 = cfg_of "DeepBench-B (16)" in
  let lap896 = cfg_of "LAPACK (896)" and lap4096 = cfg_of "LAPACK (4096)" in
  [ Reporting.check ~claim:"smaller tiles for smaller problems"
      ~paper:"32x32 @512 vs 64x64 @2048"
      ~ours:(Printf.sprintf "%dx%d vs %dx%d" small.ml small.nl big.ml big.nl)
      ~pass:(tile_area small <= tile_area big);
    Reporting.check ~claim:"deep reductions always split (ICA)"
      ~paper:"KL*KG in {128, 8}"
      ~ours:(Printf.sprintf "KL*KG = %d and %d" (ica32.kl * ica32.kg)
               (ica256.kl * ica256.kg))
      ~pass:(ica32.kl * ica32.kg > 1 && ica256.kl * ica256.kg > 1);
    Reporting.check ~claim:"skinny DeepBench splits the reduction"
      ~paper:"KG=4 (F), KL=8 (B)"
      ~ours:(Printf.sprintf "F: KL*KG=%d, B: KL*KG=%d" (dbf16.kl * dbf16.kg)
               (dbb16.kl * dbb16.kg))
      ~pass:(dbf16.kl * dbf16.kg > 1 || dbb16.kl * dbb16.kg > 1);
    Reporting.check ~claim:"LAPACK (K=32) never splits"
      ~paper:"Ks=KL=KG=1"
      ~ours:(Printf.sprintf "KG=%d and %d" lap896.kg lap4096.kg)
      ~pass:(lap896.kg = 1 && lap4096.kg = 1);
    Reporting.check ~claim:"DeepBench narrow N gets narrow NL"
      ~paper:"NL=16 @N=16"
      ~ours:(Printf.sprintf "NL=%d" dbf16.nl)
      ~pass:(dbf16.nl <= 32) ]

let run_analysis81 () =
  Reporting.print_header
    "Section 8.1: ISAAC vs cuBLAS best kernel at (M,N,K) = (2560,32,2560), fp32, P100";
  let device = Gpu.Device.p100 in
  let input = GP.input 2560 32 2560 in
  let engine = Engines.gemm device in
  let rng = Engines.fresh_rng "analysis81" in
  let plan = Option.get (Isaac.plan_gemm engine input) in
  let cub_cfg, _ = Option.get (Baselines.Cublas.best_kernel rng device input) in
  let report cfg = Option.get (Gpu.Perf_model.predict device (GP.cost input cfg)) in
  let ri = report plan.config and rc = report cub_cfg in
  let pct x = Printf.sprintf "%.0f%%" (100.0 *. x) in
  Util.Table.print
    ~header:[| "metric"; "ISAAC"; "cuBLAS (best)"; "paper ISAAC"; "paper cuBLAS" |]
    [ [| "TFLOPS"; Reporting.fmt_tf ri.tflops; Reporting.fmt_tf rc.tflops; "3.73";
         "2.56" |];
      [| "ML"; string_of_int plan.config.GP.ml; string_of_int cub_cfg.GP.ml; "64";
         "128" |];
      [| "NL"; string_of_int plan.config.nl; string_of_int cub_cfg.nl; "32"; "64" |];
      [| "KL"; string_of_int plan.config.kl; string_of_int cub_cfg.kl; "4"; "5" |];
      [| "shared memory (KB)";
         Printf.sprintf "%.2f" (float_of_int (GP.cost input plan.config).shared_bytes /. 1024.);
         Printf.sprintf "%.2f" (float_of_int (GP.cost input cub_cfg).shared_bytes /. 1024.);
         "12.25"; "12.25" |];
      [| "registers/thread";
         string_of_int (GP.cost input plan.config).regs_per_thread;
         string_of_int (GP.cost input cub_cfg).regs_per_thread; "72"; "120" |];
      [| "occupancy"; pct ri.occupancy; pct rc.occupancy; "17%"; "10%" |];
      [| "L2 hit rate"; pct ri.l2_hit_rate; pct rc.l2_hit_rate; "32%"; "24%" |] ];
  [ Reporting.check_min ~claim:"ISAAC faster at (2560,32,2560)" ~paper:"1.46x"
      ~value:(ri.tflops /. rc.tflops) ~at_least:1.2;
    Reporting.check ~claim:"ISAAC picks smaller N-tiles than cuBLAS's 64"
      ~paper:"NL 32 vs 64"
      ~ours:(Printf.sprintf "NL %d vs %d" plan.config.nl cub_cfg.nl)
      ~pass:(plan.config.nl < cub_cfg.nl);
    Reporting.check ~claim:"higher occupancy via smaller tiles"
      ~paper:"17% vs 10%"
      ~ours:(Printf.sprintf "%s vs %s" (pct ri.occupancy) (pct rc.occupancy))
      ~pass:(ri.occupancy > rc.occupancy);
    Reporting.check ~claim:"better L2 hit rate" ~paper:"32% vs 24%"
      ~ours:(Printf.sprintf "%s vs %s" (pct ri.l2_hit_rate) (pct rc.l2_hit_rate))
      ~pass:(ri.l2_hit_rate >= rc.l2_hit_rate) ]
