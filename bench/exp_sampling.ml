(* Table 1: proportion of samples accepted by the categorical generative
   model vs uniform sampling, for GEMM and CONV (§4).

   Measured on the paper's grid — every tuning parameter a power of two
   in [1, 16] — where the legal region is a sliver of the 5^10 grid, so
   uniform sampling accepts ~0.1% of draws and the factorized categorical
   model with a Dirichlet prior recovers two orders of magnitude.

   Also reports the §4.2 data-generation throughput claim ("50,000 valid
   kernels in less than two hours" — our simulated executor is far
   faster; the structure of the measurement is the same). *)

let trials () = Util.Env_config.scaled 40_000
let warmup () = Util.Env_config.scaled 1_500_000

let acceptance device ~random_input ~legal tag =
  let rng = Engines.fresh_rng ("table1-" ^ tag) in
  let space = Tuner.Config_space.table1 in
  let uniform_rate =
    Tuner.Sampler.acceptance_rate ~trials:(trials ())
      ~sample:(fun () -> Tuner.Config_space.random rng space)
      ~legal:(fun cfg -> legal device (random_input rng) cfg)
  in
  let sampler =
    Tuner.Sampler.fit ~warmup:(warmup ()) rng space ~legal:(fun cfg ->
        legal device (random_input rng) cfg)
  in
  let categorical_rate =
    Tuner.Sampler.acceptance_rate ~trials:(trials ())
      ~sample:(fun () -> Tuner.Sampler.sample rng sampler)
      ~legal:(fun cfg -> legal device (random_input rng) cfg)
  in
  (categorical_rate, uniform_rate)

let run () =
  Reporting.print_header "Table 1: generative-model acceptance rate vs uniform";
  let device = Gpu.Device.gtx980ti in
  let gemm_cat, gemm_uni =
    acceptance device "gemm"
      ~random_input:(fun rng -> Tuner.Dataset.random_gemm_input rng)
      ~legal:Tuner.Dataset.gemm_legal
  in
  let conv_cat, conv_uni =
    acceptance device "conv"
      ~random_input:(fun rng -> Tuner.Dataset.random_conv_input rng)
      ~legal:Tuner.Dataset.conv_legal
  in
  Util.Table.print
    ~header:[| "op"; "categorical"; "uniform"; "ratio" |]
    [ [| "GEMM"; Util.Table.fmt_pct gemm_cat; Util.Table.fmt_pct gemm_uni;
         Printf.sprintf "%.0fx" (gemm_cat /. Float.max 1e-9 gemm_uni) |];
      [| "CONV"; Util.Table.fmt_pct conv_cat; Util.Table.fmt_pct conv_uni;
         Printf.sprintf "%.0fx" (conv_cat /. Float.max 1e-9 conv_uni) |] ];
  (* §4.2 throughput: valid kernels benchmarked per unit time (on the
     production sampling grid, as used for actual tuning). *)
  let rng = Engines.fresh_rng "throughput" in
  let rate = Tuner.Dataset.throughput_probe rng device ~n:(Util.Env_config.scaled 2000) in
  let to_50k = 50_000.0 /. rate /. 3600.0 in
  Printf.printf
    "\nData generation: %.0f valid kernels/s -> 50,000 kernels in %.4f h (paper: < 2 h on real hardware)\n"
    rate to_50k;
  Reporting.metric ~experiment:"table1" ~unit_:"fraction"
    "table1.gemm_categorical_acceptance" gemm_cat;
  Reporting.metric ~experiment:"table1" ~unit_:"fraction"
    "table1.conv_categorical_acceptance" conv_cat;
  Reporting.metric ~experiment:"table1" ~unit_:"ratio"
    "table1.gemm_acceptance_ratio" (gemm_cat /. Float.max 1e-9 gemm_uni);
  Reporting.metric ~experiment:"table1" ~unit_:"kernels/s"
    ~kind:Obs.Bench_report.Timing "table1.generation_rate" rate;
  [ Reporting.check_min ~claim:"GEMM: categorical/uniform acceptance ratio"
      ~paper:"20% vs 0.1% (200x)" ~value:(gemm_cat /. Float.max 1e-9 gemm_uni)
      ~at_least:20.0;
    Reporting.check_min ~claim:"CONV: categorical/uniform acceptance ratio"
      ~paper:"15% vs 0.1% (150x)" ~value:(conv_cat /. Float.max 1e-9 conv_uni)
      ~at_least:20.0;
    Reporting.check_min ~claim:"GEMM categorical acceptance (%)"
      ~paper:"20%" ~value:(100.0 *. gemm_cat) ~at_least:5.0;
    Reporting.check_min ~claim:"CONV categorical acceptance (%)"
      ~paper:"15%" ~value:(100.0 *. conv_cat) ~at_least:5.0;
    Reporting.check ~claim:"50k-kernel dataset generation time"
      ~paper:"< 2 h" ~ours:(Printf.sprintf "%.4f h" to_50k) ~pass:(to_50k < 2.0) ]
