(* Shared output helpers for the experiment harness: every reproduced
   table/figure prints an ASCII table plus a list of "shape checks" —
   the qualitative claims of the paper (who wins, by roughly how much)
   evaluated against our measurements. *)

type check = {
  claim : string;
  paper : string;   (* what the paper reports *)
  ours : string;    (* what we measured *)
  pass : bool;
}

let check ~claim ~paper ~ours ~pass = { claim; paper; ours; pass }

let check_min ~claim ~paper ~value ~at_least =
  { claim; paper; ours = Printf.sprintf "%.2f" value; pass = value >= at_least }

let check_range ~claim ~paper ~value ~lo ~hi =
  { claim; paper;
    ours = Printf.sprintf "%.2f" value;
    pass = value >= lo && value <= hi }

let print_header title =
  let line = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" line title line

let print_checks checks =
  if checks <> [] then begin
    Printf.printf "\nShape checks (paper claim vs this reproduction):\n";
    Util.Table.print
      ~header:[| "claim"; "paper"; "ours"; "verdict" |]
      (List.map
         (fun c ->
           [| c.claim; c.paper; c.ours; (if c.pass then "OK" else "DIVERGES") |])
         checks)
  end

let fmt_tf = Util.Table.fmt_float ~decimals:2

(* Each experiment also drops its figure/table series as CSV under
   results/ so the paper's plots can be regenerated with any plotting
   tool. *)
let results_dir () =
  let dir = Util.Env_config.string "REPRO_RESULTS_DIR" "results" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  dir

let save_csv name ~header rows =
  let path = Filename.concat (results_dir ()) (name ^ ".csv") in
  Util.Csv.write path ~header rows;
  Printf.printf "[series written to %s]
" path

(* Terminal rendering of the reproduced figures: grouped horizontal bars
   scaled to the maximum value, one row per benchmark and one bar per
   series — a textual stand-in for the paper's bar charts. *)
let bar_chart ~series rows =
  let width = 46 in
  let maxv =
    List.fold_left
      (fun acc (_, vs) -> List.fold_left Float.max acc vs)
      1e-9 rows
  in
  let glyphs = [| '#'; '='; '-'; '.' |] in
  Printf.printf "
";
  List.iteri
    (fun i name -> Printf.printf "  %c %s
" glyphs.(i mod Array.length glyphs) name)
    series;
  List.iter
    (fun (label, values) ->
      List.iteri
        (fun i v ->
          let n = int_of_float (Float.round (float_of_int width *. v /. maxv)) in
          Printf.printf "  %-22s |%s %.2f
"
            (if i = 0 then label else "")
            (String.make (max 0 n) glyphs.(i mod Array.length glyphs))
            v)
        values)
    rows;
  Printf.printf "
"

let timed_section name f =
  Obs.Span.with_ ("bench." ^ name) (fun () ->
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dur = Unix.gettimeofday () -. t0 in
      Printf.printf "[%s completed in %.1fs]\n%!" name dur;
      (r, dur))

let time_section name f = fst (timed_section name f)

(* --- benchmark-report collector ----------------------------------------- *)

(* Experiments push scalar metrics and attribution rows here as they
   run; main.exe assembles everything into one BENCH_<rev>.json at the
   end of the run (Obs.Bench_report). *)

let metrics : Obs.Bench_report.metric list ref = ref []

let metric ?ci ?n ?(kind = Obs.Bench_report.Deterministic)
    ?(direction = Obs.Bench_report.Higher_better) ~experiment ~unit_ name value
    =
  metrics :=
    { Obs.Bench_report.m_name = name; m_experiment = experiment; value; unit_;
      direction; kind; ci; n }
    :: !metrics

let attribution : Obs.Bench_report.attribution list ref = ref []

let record_attribution rows =
  attribution :=
    !attribution
    @ List.map
        (fun (r : Gpu.Attribution.row) ->
          { Obs.Bench_report.term = r.term; counter = r.counter; a_n = r.n;
            pearson_r = r.pearson_r; scale = r.scale; drift = r.drift })
        rows

let git_rev () =
  match Util.Env_config.string "ISAAC_BENCH_REV" "" with
  | "" -> (
    try
      let ic = Unix.open_process_in "git rev-parse --short=12 HEAD 2>/dev/null" in
      let line = try String.trim (input_line ic) with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ -> "worktree"
    with _ -> "worktree")
  | rev -> rev

let build_report ~argv experiments =
  let to_check (c : check) =
    { Obs.Bench_report.claim = c.claim; paper = c.paper; ours = c.ours;
      pass = c.pass }
  in
  { Obs.Bench_report.version = Obs.Bench_report.schema_version;
    env =
      { Obs.Bench_report.rev = git_rev ();
        seed = Util.Env_config.seed ();
        repro_scale = Util.Env_config.scale ();
        device =
          Gpu.Device.gtx980ti.Gpu.Device.name ^ ", " ^ Gpu.Device.p100.name;
        argv;
        knobs = Util.Env_config.snapshot ();
        ocaml_version = Sys.ocaml_version;
        hostname = (try Unix.gethostname () with _ -> "unknown") };
    experiments =
      List.map
        (fun (key, wall_seconds, checks) ->
          { Obs.Bench_report.key; wall_seconds;
            checks = List.map to_check checks })
        experiments;
    metrics = List.rev !metrics;
    attribution = !attribution }

let write_report report =
  let path =
    Filename.concat (results_dir ())
      (Obs.Bench_report.filename ~rev:report.Obs.Bench_report.env.rev)
  in
  Obs.Bench_report.write ~path report;
  Printf.printf "[benchmark report written to %s]\n" path;
  path
