(* Shared output helpers for the experiment harness: every reproduced
   table/figure prints an ASCII table plus a list of "shape checks" —
   the qualitative claims of the paper (who wins, by roughly how much)
   evaluated against our measurements. *)

type check = {
  claim : string;
  paper : string;   (* what the paper reports *)
  ours : string;    (* what we measured *)
  pass : bool;
}

let check ~claim ~paper ~ours ~pass = { claim; paper; ours; pass }

let check_min ~claim ~paper ~value ~at_least =
  { claim; paper; ours = Printf.sprintf "%.2f" value; pass = value >= at_least }

let check_range ~claim ~paper ~value ~lo ~hi =
  { claim; paper;
    ours = Printf.sprintf "%.2f" value;
    pass = value >= lo && value <= hi }

let print_header title =
  let line = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" line title line

let print_checks checks =
  if checks <> [] then begin
    Printf.printf "\nShape checks (paper claim vs this reproduction):\n";
    Util.Table.print
      ~header:[| "claim"; "paper"; "ours"; "verdict" |]
      (List.map
         (fun c ->
           [| c.claim; c.paper; c.ours; (if c.pass then "OK" else "DIVERGES") |])
         checks)
  end

let fmt_tf = Util.Table.fmt_float ~decimals:2

(* Each experiment also drops its figure/table series as CSV under
   results/ so the paper's plots can be regenerated with any plotting
   tool. *)
let results_dir () =
  let dir = match Sys.getenv_opt "REPRO_RESULTS_DIR" with Some d -> d | None -> "results" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  dir

let save_csv name ~header rows =
  let path = Filename.concat (results_dir ()) (name ^ ".csv") in
  Util.Csv.write path ~header rows;
  Printf.printf "[series written to %s]
" path

(* Terminal rendering of the reproduced figures: grouped horizontal bars
   scaled to the maximum value, one row per benchmark and one bar per
   series — a textual stand-in for the paper's bar charts. *)
let bar_chart ~series rows =
  let width = 46 in
  let maxv =
    List.fold_left
      (fun acc (_, vs) -> List.fold_left Float.max acc vs)
      1e-9 rows
  in
  let glyphs = [| '#'; '='; '-'; '.' |] in
  Printf.printf "
";
  List.iteri
    (fun i name -> Printf.printf "  %c %s
" glyphs.(i mod Array.length glyphs) name)
    series;
  List.iter
    (fun (label, values) ->
      List.iteri
        (fun i v ->
          let n = int_of_float (Float.round (float_of_int width *. v /. maxv)) in
          Printf.printf "  %-22s |%s %.2f
"
            (if i = 0 then label else "")
            (String.make (max 0 n) glyphs.(i mod Array.length glyphs))
            v)
        values)
    rows;
  Printf.printf "
"

let time_section name f =
  Obs.Span.with_ ("bench." ^ name) (fun () ->
      let t0 = Unix.gettimeofday () in
      let r = f () in
      Printf.printf "[%s completed in %.1fs]\n%!" name (Unix.gettimeofday () -. t0);
      r)
