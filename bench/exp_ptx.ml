(* Section 8.3: the advantage of PTX-level predication for bounds
   checking. The paper's first CUDA-C code generator paid 15-20% for
   bounds checks; predication cut that to ~2%.

   We reproduce both halves: (a) with the timing model, comparing the
   same kernel compiled with no checks / predication / divergent branches
   on a ragged problem; (b) with the interpreter, counting dynamically
   issued instructions under the two strategies on a small ragged GEMM. *)

module GP = Codegen.Gemm_params

let overhead ~base ~checked = (checked -. base) /. base

let model_overheads device (i : GP.input) cfg =
  let seconds bounds =
    match Gpu.Perf_model.predict device (GP.cost ~bounds i cfg) with
    | Some r -> r.seconds
    | None -> Float.nan
  in
  let unchecked = seconds GP.Unchecked in
  ( overhead ~base:unchecked ~checked:(seconds GP.Predicated),
    overhead ~base:unchecked ~checked:(seconds GP.Branch) )

let run () =
  Reporting.print_header "Section 8.3: bounds checking, PTX predication vs CUDA-C branches";
  let device = Gpu.Device.p100 in
  let cfg = { GP.ms = 8; ns = 8; ks = 1; ml = 64; nl = 64; u = 8; kl = 1; kg = 1;
              vec = 4; db = 2 } in
  let ragged = GP.input 2049 2049 2048 in
  let square = GP.input 2048 2048 2048 in
  let pred_r, branch_r = model_overheads device ragged cfg in
  let pred_s, branch_s = model_overheads device square cfg in
  Util.Table.print
    ~header:[| "shape"; "predication overhead"; "branch overhead"; "paper" |]
    [ [| "2049^2 (ragged)"; Util.Table.fmt_pct pred_r; Util.Table.fmt_pct branch_r;
         "~2% vs 15-20%" |];
      [| "2048^2 (divisible)"; Util.Table.fmt_pct pred_s; Util.Table.fmt_pct branch_s;
         "-" |] ];
  (* Interpreter-level evidence: dynamic instruction streams. Predication
     issues (masked) instructions in place; branches skip them but add
     control-flow instructions and divergence. *)
  let small = GP.input 47 45 40 in
  let small_cfg = { GP.ms = 2; ns = 2; ks = 1; ml = 16; nl = 16; u = 8; kl = 1;
                    kg = 1; vec = 1; db = 1 } in
  let rng = Util.Rng.create 5 in
  let a = Array.init (small.m * small.k) (fun _ -> Util.Rng.uniform rng) in
  let b = Array.init (small.k * small.n) (fun _ -> Util.Rng.uniform rng) in
  let _, pred_counters =
    Codegen.Gemm.run_counted ~bounds:GP.Predicated small small_cfg ~a ~b ()
  in
  let _, branch_counters =
    Codegen.Gemm.run_counted ~bounds:GP.Branch small small_cfg ~a ~b ()
  in
  Printf.printf
    "\nDynamic instructions on a 47x45x40 ragged GEMM:\n\
    \  predicated: %d total, %d issued-but-masked, %d branches\n\
    \  branch:     %d total, %d issued-but-masked, %d branches\n"
    (Ptx.Interp.total pred_counters) pred_counters.predicated_off pred_counters.branch
    (Ptx.Interp.total branch_counters) branch_counters.predicated_off
    branch_counters.branch;
  [ Reporting.check ~claim:"predication overhead small" ~paper:"~2%"
      ~ours:(Util.Table.fmt_pct pred_r) ~pass:(pred_r < 0.05);
    Reporting.check ~claim:"branch-based checking expensive" ~paper:"15-20%"
      ~ours:(Util.Table.fmt_pct branch_r) ~pass:(branch_r > 0.10);
    Reporting.check ~claim:"branch mode adds control flow"
      ~paper:"predication needs no PC changes"
      ~ours:(Printf.sprintf "%d vs %d branch instrs" branch_counters.branch
               pred_counters.branch)
      ~pass:(branch_counters.branch > pred_counters.branch) ]
