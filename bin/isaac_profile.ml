(* isaac_profile: replay a JSONL trace recorded under ISAAC_TRACE and
   print a human-readable profile: per-phase time breakdown (inclusive
   and self time per span path), counter and histogram summaries, series
   endpoints, and the top-N hottest benchmarked configurations.

   Given several traces, prints cross-run comparison tables instead —
   counters and per-phase self times side by side with a delta column
   (last run minus first), for before/after profiling of a change.

     ISAAC_TRACE=trace.jsonl isaac_tune --samples 500 -o t.profile
     isaac_profile trace.jsonl --top 10
     isaac_profile before.jsonl after.jsonl *)

open Cmdliner
module J = Obs.Json

let fmt_secs s =
  if Float.abs s >= 1.0 then Printf.sprintf "%.2f s" s
  else if Float.abs s >= 1e-3 then Printf.sprintf "%.2f ms" (s *. 1e3)
  else Printf.sprintf "%.1f us" (s *. 1e6)

let str_field k ev = Option.bind (J.member k ev) J.to_str
let num_field k ev = Option.bind (J.member k ev) J.to_float
let int_field k ev = Option.bind (J.member k ev) J.to_int

(* --- span aggregation --------------------------------------------------- *)

type phase = {
  mutable count : int;
  mutable incl : float;       (* sum of durations of spans at this path *)
  mutable child : float;      (* sum of durations of direct children *)
  mutable errors : int;
}

let parent_path p =
  match String.rindex_opt p '/' with
  | None -> None
  | Some i -> Some (String.sub p 0 i)

let phase_table events =
  let tbl : (string, phase) Hashtbl.t = Hashtbl.create 32 in
  let get path =
    match Hashtbl.find_opt tbl path with
    | Some ph -> ph
    | None ->
      let ph = { count = 0; incl = 0.0; child = 0.0; errors = 0 } in
      Hashtbl.add tbl path ph;
      ph
  in
  List.iter
    (fun ev ->
      if str_field "ev" ev = Some "span" then
        match (str_field "path" ev, num_field "dur" ev) with
        | Some path, Some dur ->
          let ph = get path in
          ph.count <- ph.count + 1;
          ph.incl <- ph.incl +. dur;
          if J.member "error" ev = Some (J.Bool true) then
            ph.errors <- ph.errors + 1;
          (match parent_path path with
           | Some p -> let pp = get p in pp.child <- pp.child +. dur
           | None -> ())
        | _ -> ())
    events;
  tbl

let print_phases tbl =
  let rows =
    Hashtbl.fold (fun path ph acc -> (path, ph) :: acc) tbl []
    |> List.sort (fun (_, a) (_, b) -> compare b.incl a.incl)
  in
  if rows = [] then print_endline "no span events in trace."
  else begin
    let total =
      List.fold_left
        (fun acc (path, ph) ->
          if parent_path path = None then acc +. ph.incl else acc)
        0.0 rows
    in
    Util.Table.print
      ~header:[| "phase"; "count"; "inclusive"; "self"; "% of total"; "errors" |]
      (List.map
         (fun (path, ph) ->
           let self = Float.max 0.0 (ph.incl -. ph.child) in
           [| path;
              string_of_int ph.count;
              fmt_secs ph.incl;
              fmt_secs self;
              (if total > 0.0 then
                 Printf.sprintf "%.1f%%" (100.0 *. ph.incl /. total)
               else "-");
              (if ph.errors = 0 then "" else string_of_int ph.errors) |])
         rows)
  end

(* --- counters / histograms / series ------------------------------------- *)

let counter_totals events =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun ev ->
      if str_field "ev" ev = Some "counter" then
        match (str_field "name" ev, int_field "value" ev) with
        | Some name, Some v ->
          Hashtbl.replace tbl name
            (v + Option.value ~default:0 (Hashtbl.find_opt tbl name))
        | _ -> ())
    events;
  tbl

let print_counters events =
  let tbl = counter_totals events in
  let rows =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  if rows = [] then print_endline "no counter events in trace."
  else
    Util.Table.print
      ~header:[| "counter"; "value" |]
      (List.map (fun (k, v) -> [| k; string_of_int v |]) rows)

(* A trace that flushed more than once (checkpointed runs) carries
   several [hist] events per name; render one merged row per name.
   count/sum/max merge exactly; mean is recomputed from the merged
   sums; quantiles are count-weighted averages — approximate, but the
   windows came from the same distribution. *)
type hist_acc = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_max : float;
  mutable wq : float array; (* count-weighted p50/p90/p99 sums *)
}

let print_hists events =
  let tbl : (string, hist_acc) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun ev ->
      if str_field "ev" ev = Some "hist" then
        match (str_field "name" ev, int_field "count" ev) with
        | Some name, Some count when count > 0 ->
          let acc =
            match Hashtbl.find_opt tbl name with
            | Some a -> a
            | None ->
              let a =
                { h_count = 0; h_sum = 0.0; h_max = Float.neg_infinity;
                  wq = Array.make 3 0.0 }
              in
              order := name :: !order;
              Hashtbl.add tbl name a;
              a
          in
          acc.h_count <- acc.h_count + count;
          acc.h_sum <- acc.h_sum +. Option.value ~default:0.0 (num_field "sum" ev);
          (match num_field "max" ev with
           | Some m -> acc.h_max <- Float.max acc.h_max m
           | None -> ());
          List.iteri
            (fun i k ->
              match num_field k ev with
              | Some v -> acc.wq.(i) <- acc.wq.(i) +. (float_of_int count *. v)
              | None -> ())
            [ "p50"; "p90"; "p99" ]
        | _ -> ())
    events;
  if !order <> [] then begin
    print_endline "";
    Util.Table.print
      ~header:[| "histogram"; "count"; "mean"; "p50"; "p90"; "p99"; "max" |]
      (List.rev_map
         (fun name ->
           let a = Hashtbl.find tbl name in
           let n = float_of_int a.h_count in
           [| name;
              string_of_int a.h_count;
              fmt_secs (a.h_sum /. n);
              fmt_secs (a.wq.(0) /. n);
              fmt_secs (a.wq.(1) /. n);
              fmt_secs (a.wq.(2) /. n);
              (if a.h_max = Float.neg_infinity then "-" else fmt_secs a.h_max) |])
         !order)
  end

let print_series events =
  let tbl : (string, (float * float) list ref) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun ev ->
      if str_field "ev" ev = Some "point" then
        match (str_field "series" ev, num_field "x" ev, num_field "y" ev) with
        | Some s, Some x, Some y ->
          (match Hashtbl.find_opt tbl s with
           | Some l -> l := (x, y) :: !l
           | None ->
             order := s :: !order;
             Hashtbl.add tbl s (ref [ (x, y) ]))
        | _ -> ())
    events;
  if !order <> [] then begin
    print_endline "";
    Util.Table.print
      ~header:[| "series"; "points"; "first"; "last"; "min"; "max" |]
      (List.rev_map
         (fun s ->
           let pts = List.rev !(Hashtbl.find tbl s) in
           let ys = List.map snd pts in
           let first = List.hd ys and last = List.nth ys (List.length ys - 1) in
           let mn = List.fold_left Float.min first ys in
           let mx = List.fold_left Float.max first ys in
           let g = Printf.sprintf "%.4g" in
           [| s; string_of_int (List.length pts); g first; g last; g mn; g mx |])
         !order)
  end

(* --- hottest configurations --------------------------------------------- *)

let print_configs ~top events =
  let configs =
    List.filter_map
      (fun ev ->
        if str_field "ev" ev <> Some "config" then None
        else
          match (str_field "config" ev, num_field "seconds" ev) with
          | Some cfg, Some secs ->
            Some
              ( cfg,
                Option.value ~default:"-" (str_field "phase" ev),
                secs,
                Option.value ~default:Float.nan (num_field "tflops" ev) )
          | _ -> None)
      events
  in
  let n = List.length configs in
  if n = 0 then print_endline "no config events in trace."
  else begin
    let sorted =
      List.sort (fun (_, _, a, _) (_, _, b, _) -> compare b a) configs
    in
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | hd :: tl -> hd :: take (k - 1) tl
    in
    Printf.printf "%d benchmarked configurations; %d slowest:\n" n (min top n);
    Util.Table.print
      ~header:[| "config"; "phase"; "bench cost"; "TFLOPS" |]
      (List.map
         (fun (cfg, phase, secs, tflops) ->
           [| cfg; phase; fmt_secs secs; Printf.sprintf "%.2f" tflops |])
         (take top sorted))
  end

(* --- driver ------------------------------------------------------------- *)

let section title =
  Printf.printf "\n-- %s %s\n" title
    (String.make (max 0 (60 - String.length title)) '-')

(* Lenient load: traces from killed or still-running processes end in a
   truncated line, and a rotated trace may be empty but for its marker.
   Report what was skipped and profile what parsed instead of erroring. *)
let load_events path =
  let events, skipped = Obs.Trace.read_file_partial path in
  if skipped > 0 then
    Printf.eprintf
      "isaac_profile: %s: skipped %d unparseable line%s (truncated trace?)\n"
      path skipped
      (if skipped = 1 then "" else "s");
  events

let run_single path top =
  let events = load_events path in
  if events = [] then
    Printf.printf
      "trace %s: no events (empty or fully truncated trace) — nothing to profile.\n"
      path
  else begin
  (match
     List.find_opt (fun ev -> str_field "ev" ev = Some "trace_start") events
   with
   | Some ev ->
     Printf.printf "trace %s" path;
     (match Option.bind (J.member "argv" ev) (function
        | J.List l -> Some (String.concat " " (List.filter_map J.to_str l))
        | _ -> None)
      with
      | Some argv -> Printf.printf " (argv: %s)" argv
      | None -> ());
     print_newline ()
   | None -> Printf.printf "trace %s (no trace_start header)\n" path);
  (match
     List.find_opt (fun ev -> str_field "ev" ev = Some "trace_end") events
   with
   | Some ev ->
     (match num_field "ts" ev with
      | Some ts -> Printf.printf "total traced time: %s\n" (fmt_secs ts)
      | None -> ())
   | None -> print_endline "warning: no trace_end event (truncated trace?)");
  section "time by phase";
  print_phases (phase_table events);
  section "counters";
  print_counters events;
  print_hists events;
  print_series events;
  section "hottest configurations";
  print_configs ~top events
  end

(* --- cross-run comparison ------------------------------------------------ *)

let union_keys fold_tbls =
  let seen = Hashtbl.create 64 in
  List.iter (fun iter -> iter (fun k -> Hashtbl.replace seen k ())) fold_tbls;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])

let run_many paths =
  let traces = List.map (fun p -> (p, load_events p)) paths in
  Printf.printf "comparing %d traces:\n" (List.length traces);
  List.iteri
    (fun i (p, events) ->
      let total =
        List.find_opt (fun ev -> str_field "ev" ev = Some "trace_end") events
        |> Fun.flip Option.bind (num_field "ts")
      in
      Printf.printf "  [%d] %s%s\n" (i + 1) p
        (match total with
         | Some ts -> Printf.sprintf " (total %s)" (fmt_secs ts)
         | None -> " (no trace_end)"))
    traces;
  let run_headers = List.mapi (fun i _ -> Printf.sprintf "[%d]" (i + 1)) traces in
  (* Counters: one column per run plus last-minus-first delta. *)
  section "counters across runs";
  let counters = List.map (fun (_, events) -> counter_totals events) traces in
  let names =
    union_keys
      (List.map (fun tbl f -> Hashtbl.iter (fun k _ -> f k) tbl) counters)
  in
  if names = [] then print_endline "no counter events in any trace."
  else begin
    let value tbl name = Option.value ~default:0 (Hashtbl.find_opt tbl name) in
    let last = List.nth counters (List.length counters - 1) in
    let first = List.hd counters in
    Util.Table.print
      ~header:(Array.of_list (("counter" :: run_headers) @ [ "delta" ]))
      (List.map
         (fun name ->
           Array.of_list
             ((name
               :: List.map (fun tbl -> string_of_int (value tbl name)) counters)
             @ [ Printf.sprintf "%+d" (value last name - value first name) ]))
         names)
  end;
  (* Phases: self time per run plus delta, ordered by last run's self time. *)
  section "phase self time across runs";
  let self_tbls =
    List.map
      (fun (_, events) ->
        let tbl = phase_table events in
        let self : (string, float) Hashtbl.t = Hashtbl.create 32 in
        Hashtbl.iter
          (fun path ph ->
            Hashtbl.replace self path (Float.max 0.0 (ph.incl -. ph.child)))
          tbl;
        self)
      traces
  in
  let paths_union =
    union_keys
      (List.map (fun tbl f -> Hashtbl.iter (fun k _ -> f k) tbl) self_tbls)
  in
  if paths_union = [] then print_endline "no span events in any trace."
  else begin
    let value tbl p = Option.value ~default:0.0 (Hashtbl.find_opt tbl p) in
    let last = List.nth self_tbls (List.length self_tbls - 1) in
    let first = List.hd self_tbls in
    let ordered =
      List.sort
        (fun a b -> compare (value last b) (value last a))
        paths_union
    in
    Util.Table.print
      ~header:(Array.of_list (("phase" :: run_headers) @ [ "delta" ]))
      (List.map
         (fun p ->
           let d = value last p -. value first p in
           Array.of_list
             ((p :: List.map (fun tbl -> fmt_secs (value tbl p)) self_tbls)
             @ [ Printf.sprintf "%s%s" (if d >= 0.0 then "+" else "-")
                   (fmt_secs (Float.abs d)) ]))
         ordered)
  end

let run paths top =
  match paths with
  | [ path ] -> run_single path top
  | paths -> run_many paths

let cmd =
  let traces =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"TRACE"
         ~doc:"JSONL trace(s) recorded with ISAAC_TRACE=$(docv); two or \
               more switch to cross-run comparison.")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N"
         ~doc:"How many of the costliest benchmarked configs to list.")
  in
  Cmd.v
    (Cmd.info "isaac_profile"
       ~doc:"Summarize an ISAAC_TRACE profile: phase times, counters, hot configs")
    Term.(const run $ traces $ top)

let () = exit (Cmd.eval cmd)
