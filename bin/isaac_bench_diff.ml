(* isaac_bench_diff: statistical comparison of two benchmark reports.

     isaac_bench_diff results/BENCH_new.json --against bench/baseline.json
     isaac_bench_diff results/BENCH_old.json results/BENCH_new.json --strict

   Loads two BENCH_<rev>.json reports (see Obs.Bench_report) and runs
   Obs.Regress over them: deterministic metrics gate on a tight relative
   tolerance, timing metrics on confidence-interval overlap plus a
   generous threshold, shape checks on pass/fail transitions. Exit
   status 0 means no significant regression, 1 means at least one (or,
   with --strict, any worsening/missing metric), 3 means a report could
   not be loaded. This is the CI gate for the bench observatory. *)

open Cmdliner
module BR = Obs.Bench_report
module R = Obs.Regress

let load_or_die role path =
  match BR.load path with
  | Ok r -> r
  | Error msg ->
    Printf.eprintf "isaac_bench_diff: cannot load %s report %s: %s\n" role path
      msg;
    exit 3

let fmt_value v =
  if Float.is_nan v then "-"
  else if Float.abs v >= 1e6 || (Float.abs v < 1e-3 && v <> 0.0) then
    Printf.sprintf "%.3e" v
  else Printf.sprintf "%.4g" v

let fmt_rel c =
  match c.R.verdict with
  | R.Missing | R.New -> "-"
  | _ when Float.is_nan c.rel -> "-"
  | _ -> Printf.sprintf "%+.1f%%" (100.0 *. c.rel)

let print_env label (r : BR.t) =
  Printf.printf "%-9s rev %s  seed %d  scale %g  host %s\n" label r.env.rev
    r.env.seed r.env.repro_scale r.env.hostname

let run base_path cand_path against strict all det_tol timing_thr wall_thr =
  let base_path, cand_path =
    match (cand_path, against) with
    | Some c, None -> (base_path, c)
    | None, Some b -> (b, base_path)
    | Some _, Some _ ->
      prerr_endline
        "isaac_bench_diff: give either a second positional report or \
         --against, not both";
      exit 3
    | None, None ->
      prerr_endline
        "isaac_bench_diff: need a baseline (second positional report or \
         --against FILE)";
      exit 3
  in
  let base = load_or_die "baseline" base_path in
  let cand = load_or_die "candidate" cand_path in
  print_env "baseline" base;
  print_env "candidate" cand;
  if base.env.seed <> cand.env.seed || base.env.repro_scale <> cand.env.repro_scale
  then
    Printf.printf
      "note: seed/scale differ between reports; deterministic gates may \
       misfire\n";
  let config =
    { R.det_tolerance = det_tol; timing_threshold = timing_thr;
      wall_threshold = wall_thr }
  in
  let comparisons = R.compare_reports ~config base cand in
  let interesting c =
    all || c.R.significant || c.R.verdict <> R.Unchanged
  in
  let shown = List.filter interesting comparisons in
  print_newline ();
  if shown = [] then print_endline "all metrics unchanged"
  else
    Util.Table.print
      ~header:[| "metric"; "baseline"; "candidate"; "delta"; "verdict"; "note" |]
      (List.map
         (fun c ->
           [| c.R.c_name; fmt_value c.base; fmt_value c.cand; fmt_rel c;
              (R.verdict_name c.verdict
              ^ if c.significant then " (significant)" else "");
              c.note |])
         shown);
  let regressions = R.regressions comparisons in
  let worsened = R.worsened comparisons in
  Printf.printf
    "\n%d metrics compared: %d significant regressions, %d worsened or \
     missing\n"
    (List.length comparisons) (List.length regressions) (List.length worsened);
  if regressions <> [] then begin
    print_endline "FAIL: significant regressions";
    exit 1
  end;
  if strict && worsened <> [] then begin
    print_endline "FAIL (strict): worsened or missing metrics";
    exit 1
  end;
  print_endline "OK: no significant regressions"

let cmd =
  let first =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"REPORT"
          ~doc:
            "Candidate report, or the baseline when a second positional \
             report is given.")
  in
  let second =
    Arg.(
      value
      & pos 1 (some file) None
      & info [] ~docv:"CANDIDATE"
          ~doc:"Candidate report (the first positional becomes the baseline).")
  in
  let against =
    Arg.(
      value
      & opt (some file) None
      & info [ "against" ] ~docv:"BASELINE"
          ~doc:"Baseline report to compare the candidate against.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Also fail on statistically insignificant worsening and on \
             metrics missing from the candidate.")
  in
  let all =
    Arg.(
      value & flag
      & info [ "a"; "all" ] ~doc:"List unchanged metrics too, not just drift.")
  in
  let det_tol =
    Arg.(
      value
      & opt float R.default_config.det_tolerance
      & info [ "det-tolerance" ] ~docv:"FRAC"
          ~doc:"Relative tolerance for deterministic metrics.")
  in
  let timing_thr =
    Arg.(
      value
      & opt float R.default_config.timing_threshold
      & info [ "timing-threshold" ] ~docv:"FRAC"
          ~doc:"Relative threshold for CI-backed timing metrics.")
  in
  let wall_thr =
    Arg.(
      value
      & opt float R.default_config.wall_threshold
      & info [ "wall-threshold" ] ~docv:"FRAC"
          ~doc:"Relative threshold for timing metrics without intervals.")
  in
  Cmd.v
    (Cmd.info "isaac_bench_diff"
       ~doc:"Compare two benchmark reports and gate on regressions")
    Term.(
      const run $ first $ second $ against $ strict $ all $ det_tol
      $ timing_thr $ wall_thr)

let () = exit (Cmd.eval cmd)
