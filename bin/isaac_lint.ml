(* isaac_lint: static verification sweep over sampled kernel
   configurations — the verifier as the tuner's legality oracle, run as a
   standalone report.

     isaac_lint --seed 42 --count 3
     isaac_lint --op gemm --device "Tesla P100" --verbose

   For every task of the GEMM and CONV evaluation suites it draws legal
   configurations from the fitted generative model, generates the kernel,
   and runs Ptx.Verify; the exit status is non-zero if any kernel fails
   verification, which is what CI asserts. *)

open Cmdliner
module GP = Codegen.Gemm_params
module CP = Codegen.Conv_params

type stats = {
  mutable checked : int;
  mutable failed : int;
  mutable warned : int;
  mutable factor_sum : float;
}

let new_stats () = { checked = 0; failed = 0; warned = 0; factor_sum = 0.0 }

let lint_one ~verbose ~stats name program ~iargs ~block =
  let r = Ptx.Verify.run program ~iargs ~block in
  stats.checked <- stats.checked + 1;
  stats.factor_sum <- stats.factor_sum +. r.Ptx.Verify.bank.conflict_factor;
  if r.warnings <> [] then stats.warned <- stats.warned + 1;
  if not (Ptx.Verify.ok r) then begin
    stats.failed <- stats.failed + 1;
    Printf.printf "FAIL %s\n%s\n" name (Ptx.Verify.to_string r)
  end
  else if verbose then
    Printf.printf "ok   %s (bank factor %.2f, %d warnings)\n" name
      r.Ptx.Verify.bank.conflict_factor
      (List.length r.warnings)

let sample_configs rng sampler ~count ~legal =
  let rec go n acc =
    if n = 0 then acc
    else
      match Tuner.Sampler.sample_legal rng sampler ~legal with
      | None -> acc
      | Some cfg -> go (n - 1) (cfg :: acc)
  in
  go count []

let lint_gemm ~verbose ~count ~warmup rng device =
  let sampler =
    Tuner.Dataset.fit_gemm_sampler ~warmup ~dtypes:[ Ptx.Types.F32 ] rng device
  in
  let stats = new_stats () in
  let rows = ref [] in
  List.iter
    (fun (t : Workloads.Gemm_suites.task) ->
      let i = t.input in
      let before = stats.failed in
      let factor0 = stats.factor_sum and checked0 = stats.checked in
      let configs =
        sample_configs rng sampler ~count
          ~legal:(Tuner.Dataset.gemm_legal device i)
      in
      List.iter
        (fun cfg_array ->
          let c = GP.config_of_array cfg_array in
          lint_one ~verbose ~stats
            (Printf.sprintf "%s [%s]" (GP.describe_name i c)
               (Tuner.Config_space.describe Tuner.Config_space.gemm cfg_array))
            (Codegen.Gemm.generate i c)
            ~iargs:[ ("M", i.m); ("N", i.n); ("K", i.k) ]
            ~block:(GP.threads_per_block c, 1, 1))
        configs;
      let n = stats.checked - checked0 in
      rows :=
        [| t.group ^ " " ^ t.label;
           string_of_int n;
           string_of_int (stats.failed - before);
           Printf.sprintf "%.2f"
             (if n = 0 then 1.0 else (stats.factor_sum -. factor0) /. float_of_int n)
        |]
        :: !rows)
    (Workloads.Gemm_suites.fp32_suite ~mk:2560);
  (stats, List.rev !rows)

let lint_conv ~verbose ~count ~warmup rng device =
  let sampler =
    Tuner.Dataset.fit_conv_sampler ~warmup ~dtypes:[ Ptx.Types.F32 ] rng device
  in
  let stats = new_stats () in
  let rows = ref [] in
  List.iter
    (fun (t : Workloads.Conv_suites.task) ->
      let i = t.input in
      let gi = CP.gemm_input i in
      let before = stats.failed in
      let factor0 = stats.factor_sum and checked0 = stats.checked in
      let configs =
        sample_configs rng sampler ~count
          ~legal:(Tuner.Dataset.conv_legal device i)
      in
      List.iter
        (fun cfg_array ->
          let c = GP.config_of_array cfg_array in
          lint_one ~verbose ~stats
            (Printf.sprintf "%s [%s]" (CP.describe_name i c)
               (Tuner.Config_space.describe Tuner.Config_space.gemm cfg_array))
            (Codegen.Conv.generate i c)
            ~iargs:[ ("M", gi.GP.m); ("N", gi.GP.n); ("K", gi.GP.k) ]
            ~block:(GP.threads_per_block c, 1, 1))
        configs;
      let n = stats.checked - checked0 in
      rows :=
        [| t.group ^ " " ^ t.label;
           string_of_int n;
           string_of_int (stats.failed - before);
           Printf.sprintf "%.2f"
             (if n = 0 then 1.0 else (stats.factor_sum -. factor0) /. float_of_int n)
        |]
        :: !rows)
    (Workloads.Conv_suites.suite Ptx.Types.F32);
  (stats, List.rev !rows)

let run op device_name seed count warmup verbose =
  let device =
    match
      List.find_opt (fun (d : Gpu.Device.t) -> d.name = device_name) Gpu.Device.all
    with
    | Some d -> d
    | None ->
      Printf.eprintf "unknown device %S\n" device_name;
      exit 2
  in
  let rng = Util.Rng.create seed in
  let sections =
    (if op = "conv" then [] else [ ("GEMM", lint_gemm ~verbose ~count ~warmup rng device) ])
    @
    if op = "gemm" then []
    else [ ("CONV", lint_conv ~verbose ~count ~warmup rng device) ]
  in
  let any_failed = ref false in
  List.iter
    (fun (title, (stats, rows)) ->
      Printf.printf "%s suite on %s: %d kernels, %d failed, %d with warnings\n"
        title device.name stats.checked stats.failed stats.warned;
      Util.Table.print
        ~header:[| "task"; "kernels"; "failed"; "mean bank factor" |]
        rows;
      if stats.failed > 0 then any_failed := true)
    sections;
  if !any_failed then begin
    print_endline "lint: FAILED (verifier errors above)";
    exit 1
  end
  else print_endline "lint: all sampled kernels verified clean"

let cmd =
  let op =
    Arg.(
      value
      & opt (enum [ ("both", "both"); ("gemm", "gemm"); ("conv", "conv") ]) "both"
      & info [ "op" ] ~doc:"Which generator to lint: gemm, conv or both.")
  in
  let device =
    Arg.(
      value
      & opt string "Tesla P100"
      & info [ "device" ] ~doc:"Device model the legality filter uses.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let count =
    Arg.(
      value & opt int 3
      & info [ "count" ] ~doc:"Sampled configurations per suite task.")
  in
  let warmup =
    Arg.(
      value & opt int 2000
      & info [ "warmup" ] ~doc:"Sampler warm-up draws (generative model fit).")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Per-kernel lines.") in
  Cmd.v
    (Cmd.info "isaac_lint"
       ~doc:"Statically verify sampled GEMM/CONV kernels and report")
    Term.(const run $ op $ device $ seed $ count $ warmup $ verbose)

let () = exit (Cmd.eval cmd)
