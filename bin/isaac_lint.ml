(* isaac_lint: static verification sweep over sampled kernel
   configurations — the verifier as the tuner's legality oracle, run as a
   standalone report.

     isaac_lint --seed 42 --count 3
     isaac_lint --op gemm --device "Tesla P100" --verbose
     isaac_lint --strict --json lint.json
     isaac_lint --op gemm --count 1 --dump-binary

   For every task of the GEMM and CONV evaluation suites it draws legal
   configurations from the fitted generative model, generates the kernel,
   and runs Ptx.Verify (which folds in the Ptx.Scoreboard scheduling
   lints: dead stores, unread registers, unreachable code, redundant
   barriers).

   Exit status: 0 when every kernel is clean; 1 on any verifier error;
   2 under --strict when there are no errors but some kernel carries a
   warning other than Unanalyzable (Unanalyzable marks sites the affine
   analyses skipped, not a defect of the kernel — it is tabulated
   separately at the end of the sweep). *)

open Cmdliner
module GP = Codegen.Gemm_params
module CP = Codegen.Conv_params

type stats = {
  mutable checked : int;
  mutable failed : int;
  mutable warned : int;
  mutable strict_warned : int;  (* kernels with a non-Unanalyzable warning *)
  mutable unanalyzable : int;   (* Unanalyzable warning count (sites) *)
  mutable factor_sum : float;
}

let new_stats () =
  { checked = 0; failed = 0; warned = 0; strict_warned = 0; unanalyzable = 0;
    factor_sum = 0.0 }

(* One sampled kernel's outcome, the unit of the --json report. *)
type record = {
  op : string;
  task : string;
  kernel : string;
  report : Ptx.Verify.report;
}

let is_unanalyzable (d : Ptx.Verify.diag) = d.kind = Ptx.Verify.Unanalyzable

let lint_one ~verbose ~dump_binary ~stats ~records ~op ~task name program
    ~iargs ~block =
  let r = Ptx.Verify.run program ~iargs ~block in
  stats.checked <- stats.checked + 1;
  stats.factor_sum <- stats.factor_sum +. r.Ptx.Verify.bank.conflict_factor;
  if r.warnings <> [] then stats.warned <- stats.warned + 1;
  let unan, other = List.partition is_unanalyzable r.warnings in
  stats.unanalyzable <- stats.unanalyzable + List.length unan;
  if other <> [] then stats.strict_warned <- stats.strict_warned + 1;
  records := { op; task; kernel = name; report = r } :: !records;
  if not (Ptx.Verify.ok r) then begin
    stats.failed <- stats.failed + 1;
    Printf.printf "FAIL %s\n%s\n" name (Ptx.Verify.to_string r)
  end
  else begin
    (* Scheduling lints deserve eyes even when not --verbose: they are
       generator defects, and the strict gate trips on them. *)
    List.iter
      (fun (d : Ptx.Verify.diag) ->
        Printf.printf "warn %s: [%s] %s\n" name
          (Ptx.Verify.kind_name d.kind) d.message)
      other;
    if verbose then
      Printf.printf "ok   %s (bank factor %.2f, %d warnings)\n" name
        r.Ptx.Verify.bank.conflict_factor
        (List.length r.warnings)
  end;
  (* --dump-binary: the packed Ptx.Encode listing of the (register-
     allocated) kernel — hex word, control-info stall byte, disassembled
     text and field breakdown per instruction. *)
  if dump_binary then
    match Ptx.Encode.encode (Ptx.Regalloc.allocate program) with
    | Ok e -> print_string (Ptx.Encode.dump e)
    | Error msg -> Printf.printf "dump-binary %s: %s\n" name msg

let sample_configs rng sampler ~count ~legal =
  let rec go n acc =
    if n = 0 then acc
    else
      match Tuner.Sampler.sample_legal rng sampler ~legal with
      | None -> acc
      | Some cfg -> go (n - 1) (cfg :: acc)
  in
  go count []

let lint_gemm ~verbose ~dump_binary ~count ~warmup rng device =
  let sampler =
    Tuner.Dataset.fit_gemm_sampler ~warmup ~dtypes:[ Ptx.Types.F32 ] rng device
  in
  let stats = new_stats () in
  let records = ref [] in
  let rows = ref [] in
  List.iter
    (fun (t : Workloads.Gemm_suites.task) ->
      let i = t.input in
      let before = stats.failed in
      let factor0 = stats.factor_sum and checked0 = stats.checked in
      let configs =
        sample_configs rng sampler ~count
          ~legal:(Tuner.Dataset.gemm_legal device i)
      in
      List.iter
        (fun cfg_array ->
          let c = GP.config_of_array cfg_array in
          lint_one ~verbose ~dump_binary ~stats ~records ~op:"gemm"
            ~task:(t.group ^ " " ^ t.label)
            (Printf.sprintf "%s [%s]" (GP.describe_name i c)
               (Tuner.Config_space.describe Tuner.Config_space.gemm cfg_array))
            (Codegen.Gemm.generate i c)
            ~iargs:[ ("M", i.m); ("N", i.n); ("K", i.k) ]
            ~block:(GP.threads_per_block c, 1, 1))
        configs;
      let n = stats.checked - checked0 in
      rows :=
        [| t.group ^ " " ^ t.label;
           string_of_int n;
           string_of_int (stats.failed - before);
           Printf.sprintf "%.2f"
             (if n = 0 then 1.0 else (stats.factor_sum -. factor0) /. float_of_int n)
        |]
        :: !rows)
    (Workloads.Gemm_suites.fp32_suite ~mk:2560);
  (stats, List.rev !rows, List.rev !records)

let lint_conv ~verbose ~dump_binary ~count ~warmup rng device =
  let sampler =
    Tuner.Dataset.fit_conv_sampler ~warmup ~dtypes:[ Ptx.Types.F32 ] rng device
  in
  let stats = new_stats () in
  let records = ref [] in
  let rows = ref [] in
  List.iter
    (fun (t : Workloads.Conv_suites.task) ->
      let i = t.input in
      let gi = CP.gemm_input i in
      let before = stats.failed in
      let factor0 = stats.factor_sum and checked0 = stats.checked in
      let configs =
        sample_configs rng sampler ~count
          ~legal:(Tuner.Dataset.conv_legal device i)
      in
      List.iter
        (fun cfg_array ->
          let c = GP.config_of_array cfg_array in
          lint_one ~verbose ~dump_binary ~stats ~records ~op:"conv"
            ~task:(t.group ^ " " ^ t.label)
            (Printf.sprintf "%s [%s]" (CP.describe_name i c)
               (Tuner.Config_space.describe Tuner.Config_space.gemm cfg_array))
            (Codegen.Conv.generate i c)
            ~iargs:[ ("M", gi.GP.m); ("N", gi.GP.n); ("K", gi.GP.k) ]
            ~block:(GP.threads_per_block c, 1, 1))
        configs;
      let n = stats.checked - checked0 in
      rows :=
        [| t.group ^ " " ^ t.label;
           string_of_int n;
           string_of_int (stats.failed - before);
           Printf.sprintf "%.2f"
             (if n = 0 then 1.0 else (stats.factor_sum -. factor0) /. float_of_int n)
        |]
        :: !rows)
    (Workloads.Conv_suites.suite Ptx.Types.F32);
  (stats, List.rev !rows, List.rev !records)

(* --json: one machine-readable report for the whole sweep, written with
   Obs.Json (the repo's only JSON implementation) so CI can upload it as
   an artifact and downstream tooling can diff kind counts across
   commits. *)
let json_of_diag (d : Ptx.Verify.diag) =
  Obs.Json.Obj
    [ ("kind", Obs.Json.String (Ptx.Verify.kind_name d.kind));
      ("pc", match d.pc with Some pc -> Obs.Json.Int pc | None -> Obs.Json.Null);
      ("message", Obs.Json.String d.message) ]

let json_of_record r =
  let rep = r.report in
  Obs.Json.Obj
    [ ("op", Obs.Json.String r.op);
      ("task", Obs.Json.String r.task);
      ("kernel", Obs.Json.String r.kernel);
      ("ok", Obs.Json.Bool (Ptx.Verify.ok rep));
      ( "bank",
        Obs.Json.Obj
          [ ("sites", Obs.Json.Int rep.bank.sites);
            ("transactions", Obs.Json.Int rep.bank.transactions);
            ("conflicted", Obs.Json.Int rep.bank.conflicted);
            ("conflict_factor", Obs.Json.Float rep.bank.conflict_factor) ] );
      ("errors", Obs.Json.List (List.map json_of_diag rep.errors));
      ("warnings", Obs.Json.List (List.map json_of_diag rep.warnings)) ]

let kind_counts records =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      List.iter
        (fun (d : Ptx.Verify.diag) ->
          let k = Ptx.Verify.kind_name d.kind in
          Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
        (r.report.Ptx.Verify.errors @ r.report.warnings))
    records;
  Hashtbl.fold (fun k v acc -> (k, Obs.Json.Int v) :: acc) tbl []
  |> List.sort compare

let write_json path ~device ~seed ~count sections =
  let records = List.concat_map (fun (_, (_, _, rs)) -> rs) sections in
  let summaries =
    List.map
      (fun (title, ((stats : stats), _, _)) ->
        ( String.lowercase_ascii title,
          Obs.Json.Obj
            [ ("checked", Obs.Json.Int stats.checked);
              ("failed", Obs.Json.Int stats.failed);
              ("warned", Obs.Json.Int stats.warned);
              ("strict_warned", Obs.Json.Int stats.strict_warned);
              ("unanalyzable", Obs.Json.Int stats.unanalyzable) ] ))
      sections
  in
  let doc =
    Obs.Json.Obj
      [ ("tool", Obs.Json.String "isaac_lint");
        ("device", Obs.Json.String device);
        ("seed", Obs.Json.Int seed);
        ("count", Obs.Json.Int count);
        ("suites", Obs.Json.Obj summaries);
        ("diagnostic_counts", Obs.Json.Obj (kind_counts records));
        ("kernels", Obs.Json.List (List.map json_of_record records)) ]
  in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "lint: JSON report written to %s\n" path

let run op device_name seed count warmup verbose dump_binary strict json =
  let device =
    match
      List.find_opt (fun (d : Gpu.Device.t) -> d.name = device_name) Gpu.Device.all
    with
    | Some d -> d
    | None ->
      Printf.eprintf "unknown device %S\n" device_name;
      exit 3
  in
  let rng = Util.Rng.create seed in
  let sections =
    (if op = "conv" then []
     else [ ("GEMM", lint_gemm ~verbose ~dump_binary ~count ~warmup rng device) ])
    @
    if op = "gemm" then []
    else [ ("CONV", lint_conv ~verbose ~dump_binary ~count ~warmup rng device) ]
  in
  List.iter
    (fun (title, ((stats : stats), rows, _)) ->
      Printf.printf "%s suite on %s: %d kernels, %d failed, %d with warnings\n"
        title device.name stats.checked stats.failed stats.warned;
      Util.Table.print
        ~header:[| "task"; "kernels"; "failed"; "mean bank factor" |]
        rows)
    sections;
  (* End-of-sweep summary: how much of each suite escaped the affine
     analyses (Unanalyzable sites) vs. warnings the strict gate trips on. *)
  Printf.printf "\nSweep summary:\n";
  Util.Table.print
    ~header:[| "suite"; "kernels"; "errors"; "unanalyzable"; "strict warnings" |]
    (List.map
       (fun (title, ((stats : stats), _, _)) ->
         [| title;
            string_of_int stats.checked;
            string_of_int stats.failed;
            string_of_int stats.unanalyzable;
            string_of_int stats.strict_warned |])
       sections);
  (match json with
   | Some path -> write_json path ~device:device.name ~seed ~count sections
   | None -> ());
  let total f = List.fold_left (fun acc (_, (s, _, _)) -> acc + f s) 0 sections in
  let failed = total (fun s -> s.failed) in
  let strict_warned = total (fun s -> s.strict_warned) in
  if failed > 0 then begin
    print_endline "lint: FAILED (verifier errors above)";
    exit 1
  end
  else if strict && strict_warned > 0 then begin
    Printf.printf
      "lint: %d kernels carry non-Unanalyzable warnings (strict mode)\n"
      strict_warned;
    exit 2
  end
  else print_endline "lint: all sampled kernels verified clean"

let cmd =
  let op =
    Arg.(
      value
      & opt (enum [ ("both", "both"); ("gemm", "gemm"); ("conv", "conv") ]) "both"
      & info [ "op" ] ~doc:"Which generator to lint: gemm, conv or both.")
  in
  let device =
    Arg.(
      value
      & opt string "Tesla P100"
      & info [ "device" ] ~doc:"Device model the legality filter uses.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let count =
    Arg.(
      value & opt int 3
      & info [ "count" ] ~doc:"Sampled configurations per suite task.")
  in
  let warmup =
    Arg.(
      value & opt int 2000
      & info [ "warmup" ] ~doc:"Sampler warm-up draws (generative model fit).")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Per-kernel lines.") in
  let dump_binary =
    Arg.(
      value & flag
      & info [ "dump-binary" ]
          ~doc:
            "For every linted kernel, print its packed binary encoding: one \
             line per instruction word (hex encoding, control-info stall \
             byte, disassembly) plus the opcode/guard/operand field \
             breakdown. Pair with --count 1 and --op to dump a single \
             kernel.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Exit 2 when any kernel carries a warning other than \
             Unanalyzable (errors still exit 1).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Write a machine-readable per-kernel report to $(docv).")
  in
  Cmd.v
    (Cmd.info "isaac_lint"
       ~doc:"Statically verify sampled GEMM/CONV kernels and report")
    Term.(const run $ op $ device $ seed $ count $ warmup $ verbose $ dump_binary $ strict $ json)

let () = exit (Cmd.eval cmd)
