(* isaac_query: runtime kernel inference from a saved profile — the
   paper's §6 as a command line tool.

     isaac_query -p p100-gemm.profile -m 2560 -n 16 -k 2560
     isaac_query -p p100-conv.profile --conv --cn 16 --cc 512 --ckf 48 \
                 --cpq 14 --crs 5 *)

open Cmdliner

let device_of_name name =
  match List.find_opt (fun (d : Gpu.Device.t) -> d.name = name) Gpu.Device.all with
  | Some d -> d
  | None -> failwith ("profile tuned on unknown device " ^ name)

let dtype_conv =
  let parse = function
    | "f16" | "half" -> Ok Ptx.Types.F16
    | "f32" | "float" -> Ok Ptx.Types.F32
    | "f64" | "double" -> Ok Ptx.Types.F64
    | _ -> Error (`Msg "unknown dtype (f16/f32/f64)")
  in
  Arg.conv (parse, fun fmt d -> Format.fprintf fmt "%s" (Ptx.Types.dtype_name d))

let print_plan (plan : Isaac.plan) =
  let c = plan.config in
  Util.Table.print
    ~header:[| "parameter"; "value" |]
    [ [| "Ms x Ns x Ks"; Printf.sprintf "%d x %d x %d" c.ms c.ns c.ks |];
      [| "ML x NL"; Printf.sprintf "%d x %d" c.ml c.nl |];
      [| "U (prefetch)"; string_of_int c.u |];
      [| "KL (block split)"; string_of_int c.kl |];
      [| "KG (grid split)"; string_of_int c.kg |];
      [| "vector width"; string_of_int c.vec |];
      [| "buffering"; (if c.db = 2 then "double" else "single") |];
      [| "predicted"; Printf.sprintf "%.2f TFLOPS" plan.predicted_tflops |];
      [| "re-benchmarked"; Printf.sprintf "%.2f TFLOPS" plan.measurement.tflops |];
      [| "legal configs searched"; string_of_int plan.n_legal |] ]

(* Planning-latency breakdown (--timing): the per-phase wall clock the
   search recorded, plus the end-to-end total. *)
let print_timing (plan : Isaac.plan) =
  match plan.phases with
  | [] -> print_endline "plan served from cache: no timing recorded"
  | phases ->
    let total = List.fold_left (fun acc (_, t) -> acc +. t) 0.0 phases in
    print_newline ();
    Util.Table.print
      ~header:[| "phase"; "time" |]
      (List.map
         (fun (name, t) -> [| name; Printf.sprintf "%.2f ms" (t *. 1e3) |])
         phases
      @ [ [| "total"; Printf.sprintf "%.2f ms" (total *. 1e3) |] ])

let engine_conv =
  let parse = function
    | "batched" -> Ok `Batched
    | "scalar" -> Ok `Scalar
    | _ -> Error (`Msg "unknown engine (batched/scalar)")
  in
  Arg.conv
    ( parse,
      fun fmt e ->
        Format.fprintf fmt "%s"
          (match e with `Batched -> "batched" | `Scalar -> "scalar") )

let run profile_path conv explain timing engine_kind m n k dtype a_trans b_trans
    cn cc ckf cpq crs_ =
  let profile =
    match Tuner.Profile.load profile_path with
    | Ok p -> p
    | Error msg -> prerr_endline msg; exit 2
  in
  let device = device_of_name profile.device in
  let engine = Isaac.of_profile device profile in
  if conv then begin
    let input =
      Codegen.Conv_params.input ~dtype ~n:cn ~c:cc ~k:ckf ~p:cpq ~q:cpq ~r:crs_
        ~s:crs_ ()
    in
    if explain then print_string (Isaac.explain_conv engine input)
    else begin
      Printf.printf "CONV N=%d C=%d K=%d P=Q=%d R=S=%d (%s) on %s\n" cn cc ckf cpq
        crs_ (Ptx.Types.dtype_name dtype) device.name;
      match Isaac.plan_conv ~engine:engine_kind engine input with
      | Some plan ->
        print_plan plan;
        if timing then print_timing plan
      | None -> prerr_endline "no legal kernel found"
    end
  end
  else begin
    let input = Codegen.Gemm_params.input ~dtype ~a_trans ~b_trans m n k in
    if explain then print_string (Isaac.explain_gemm engine input)
    else begin
      Printf.printf "GEMM %dx%dx%d %c%c (%s) on %s\n" m n k
        (if a_trans then 'T' else 'N')
        (if b_trans then 'T' else 'N')
        (Ptx.Types.dtype_name dtype) device.name;
      match Isaac.plan_gemm ~engine:engine_kind engine input with
      | Some plan ->
        print_plan plan;
        if timing then print_timing plan
      | None -> prerr_endline "no legal kernel found"
    end
  end

let cmd =
  let profile =
    Arg.(required & opt (some string) None & info [ "p"; "profile" ] ~doc:"Profile path.")
  in
  let conv = Arg.(value & flag & info [ "conv" ] ~doc:"Query a convolution instead of GEMM.") in
  let explain =
    Arg.(value & flag & info [ "explain" ] ~doc:"Print a full analysis of the chosen kernel.")
  in
  let timing =
    Arg.(value & flag
         & info [ "timing" ]
             ~doc:"Print the planning-latency breakdown (featurize, \
                   inference, argmax, ...) alongside the plan.")
  in
  let engine_kind =
    Arg.(value & opt engine_conv `Batched
         & info [ "engine" ]
             ~doc:"Search engine: $(b,batched) (default) or $(b,scalar) (the \
                   reference path; identical plan, slower).")
  in
  let m = Arg.(value & opt int 1024 & info [ "m" ] ~doc:"GEMM M.") in
  let n = Arg.(value & opt int 1024 & info [ "n" ] ~doc:"GEMM N.") in
  let k = Arg.(value & opt int 1024 & info [ "k" ] ~doc:"GEMM K.") in
  let dtype = Arg.(value & opt dtype_conv Ptx.Types.F32 & info [ "dtype" ] ~doc:"f16/f32/f64.") in
  let at = Arg.(value & flag & info [ "at" ] ~doc:"A transposed.") in
  let bt = Arg.(value & flag & info [ "bt" ] ~doc:"B transposed.") in
  let cn = Arg.(value & opt int 16 & info [ "cn" ] ~doc:"CONV batch N.") in
  let cc = Arg.(value & opt int 64 & info [ "cc" ] ~doc:"CONV input channels C.") in
  let ckf = Arg.(value & opt int 64 & info [ "ckf" ] ~doc:"CONV filters K.") in
  let cpq = Arg.(value & opt int 14 & info [ "cpq" ] ~doc:"CONV output P=Q.") in
  let crs_ = Arg.(value & opt int 3 & info [ "crs" ] ~doc:"CONV filter R=S.") in
  Cmd.v
    (Cmd.info "isaac_query" ~doc:"Infer the best kernel for an input from a tuned profile")
    Term.(const run $ profile $ conv $ explain $ timing $ engine_kind $ m $ n $ k
          $ dtype $ at $ bt $ cn $ cc $ ckf $ cpq $ crs_)

let () = exit (Cmd.eval cmd)
