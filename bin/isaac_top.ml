(* isaac_top: console view of an ISAAC_TELEMETRY snapshot file.

   The telemetry exporter appends one JSON snapshot per line; isaac_top
   renders the newest one — counters, gauges, latency histograms and
   model-drift cells — either once (--once, for CI and scripts) or live,
   re-reading the file on an interval:

     ISAAC_TELEMETRY=/tmp/t.jsonl,2 isaac_query --profile t.profile ...
     isaac_top /tmp/t.jsonl            # live, refreshes every 2s
     isaac_top --once /tmp/t.jsonl     # render newest snapshot and exit *)

open Cmdliner
module J = Obs.Json

let fmt_secs s =
  if Float.abs s >= 1.0 then Printf.sprintf "%.2f s" s
  else if Float.abs s >= 1e-3 then Printf.sprintf "%.2f ms" (s *. 1e3)
  else Printf.sprintf "%.1f us" (s *. 1e6)

(* Histogram values are rendered as durations when the name says they
   are seconds (the convention every built-in histogram follows). *)
let fmt_value ~name v =
  if Float.is_nan v then "-"
  else if
    String.length name >= 2 && String.sub name (String.length name - 2) 2 = "_s"
  then fmt_secs v
  else Printf.sprintf "%.4g" v

let obj_fields = function J.Obj fields -> fields | _ -> []

let num_field k ev = Option.bind (J.member k ev) J.to_float
let int_field k ev = Option.bind (J.member k ev) J.to_int

let section title =
  Printf.printf "\n-- %s %s\n" title
    (String.make (max 0 (60 - String.length title)) '-')

let render snap =
  (match (int_field "seq" snap, num_field "unix_time" snap) with
   | Some seq, Some t ->
     let age = Unix.gettimeofday () -. t in
     let tm = Unix.localtime t in
     Printf.printf
       "isaac telemetry — snapshot #%d at %04d-%02d-%02d %02d:%02d:%02d (age %s)\n"
       seq (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
       tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
       (fmt_secs (Float.max 0.0 age))
   | _ -> print_endline "isaac telemetry — snapshot");
  let counters = Option.value ~default:J.Null (J.member "counters" snap) in
  let rows =
    List.filter_map
      (fun (name, v) ->
        Option.map (fun n -> [| name; string_of_int n |]) (J.to_int v))
      (obj_fields counters)
  in
  section "counters";
  if rows = [] then print_endline "none."
  else Util.Table.print ~header:[| "counter"; "total" |] rows;
  let gauges = Option.value ~default:J.Null (J.member "gauges" snap) in
  let rows =
    List.filter_map
      (fun (name, v) ->
        Option.map (fun x -> [| name; fmt_value ~name x |]) (J.to_float v))
      (obj_fields gauges)
  in
  section "gauges";
  if rows = [] then print_endline "none."
  else Util.Table.print ~header:[| "gauge"; "value" |] rows;
  let hists = Option.value ~default:J.Null (J.member "hists" snap) in
  let rows =
    List.filter_map
      (fun (name, h) ->
        match int_field "count" h with
        | None -> None
        | Some count ->
          let f k =
            match num_field k h with
            | Some v -> fmt_value ~name v
            | None -> "-"
          in
          Some
            [| name; string_of_int count; f "mean"; f "p50"; f "p95"; f "p99";
               f "max" |])
      (obj_fields hists)
  in
  section "histograms";
  if rows = [] then print_endline "none."
  else
    Util.Table.print
      ~header:[| "histogram"; "count"; "mean"; "p50"; "p95"; "p99"; "max" |]
      rows;
  let model = Option.value ~default:J.Null (J.member "model" snap) in
  let rows =
    List.concat_map
      (fun (op, per_op) ->
        List.filter_map
          (fun (bucket, cell) ->
            match (int_field "n" cell, num_field "mae_rel" cell) with
            | Some n, Some mae ->
              Some
                [| op; bucket; string_of_int n;
                   Printf.sprintf "%.1f%%" (100.0 *. mae) |]
            | _ -> None)
          (obj_fields
             (Option.value ~default:J.Null (J.member "buckets" per_op))))
      (obj_fields model)
  in
  section "model drift (predicted vs measured)";
  if rows = [] then print_endline "no rebenched predictions yet."
  else
    Util.Table.print
      ~header:[| "op"; "input bucket"; "n"; "mean abs rel error" |]
      rows

(* Newest parseable snapshot in the file; lenient about a line the
   exporter is mid-append on. *)
let load_newest path =
  match Obs.Trace.read_file_partial path with
  | exception Sys_error msg ->
    Printf.eprintf "isaac_top: %s\n" msg;
    None
  | [], _ ->
    Printf.eprintf "isaac_top: %s: no parseable snapshot\n" path;
    None
  | snaps, _ -> Some (List.nth snaps (List.length snaps - 1))

let run path once interval =
  if once then (
    match load_newest path with
    | None -> exit 1
    | Some snap ->
      render snap;
      exit 0)
  else begin
    let rec loop () =
      print_string "\027[2J\027[H";
      (match load_newest path with
       | Some snap -> render snap
       | None -> Printf.printf "waiting for %s ...\n" path);
      Printf.printf "\n(refreshing every %gs; Ctrl-C to quit)\n%!" interval;
      Unix.sleepf interval;
      loop ()
    in
    loop ()
  end

let cmd =
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SNAPSHOT"
         ~doc:"JSONL snapshot file written by ISAAC_TELEMETRY=$(docv),interval.")
  in
  let once =
    Arg.(value & flag & info [ "once" ]
         ~doc:"Render the newest snapshot once and exit (exit 1 if none).")
  in
  let interval =
    Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"SECONDS"
         ~doc:"Refresh period in live mode.")
  in
  Cmd.v
    (Cmd.info "isaac_top"
       ~doc:"Live console view of ISAAC serving telemetry snapshots")
    Term.(const run $ path $ once $ interval)

let () = exit (Cmd.eval cmd)
