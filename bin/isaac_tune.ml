(* isaac_tune: run the full auto-tuning pipeline for a device/operation
   and save the resulting input-aware profile to disk.

     isaac_tune --device p100 --op gemm --samples 8000 -o p100-gemm.profile *)

open Cmdliner

let device_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "980ti" | "gtx980ti" | "maxwell" -> Ok Gpu.Device.gtx980ti
    | "p100" | "pascal" -> Ok Gpu.Device.p100
    | _ -> Error (`Msg "unknown device (use 980ti or p100)")
  in
  let print fmt (d : Gpu.Device.t) = Format.fprintf fmt "%s" d.name in
  Arg.conv (parse, print)

let op_conv =
  let parse = function
    | "gemm" -> Ok `Gemm
    | "conv" -> Ok `Conv
    | _ -> Error (`Msg "unknown op (use gemm or conv)")
  in
  let print fmt op = Format.fprintf fmt "%s" (match op with `Gemm -> "gemm" | `Conv -> "conv") in
  Arg.conv (parse, print)

(* Without --resume a fresh run must not inherit another run's partial
   chunks: drop anything matching <path>.chunk* before starting. *)
let clear_stale_checkpoints path =
  let dir = Filename.dirname path and base = Filename.basename path in
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
    Array.iter
      (fun f ->
        if String.starts_with ~prefix:(base ^ ".chunk") f then
          try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      entries

let run device op samples epochs seed domains out checkpoint every resume verbose =
  if verbose then begin
    Fmt_tty.setup_std_outputs ();
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info)
  end;
  (match checkpoint with
   | Some path when not resume -> clear_stale_checkpoints path
   | _ -> ());
  let rng = Util.Rng.create seed in
  let t0 = Unix.gettimeofday () in
  let engine =
    Isaac.tune ~samples ~epochs ~domains
      ?checkpoint:(Option.map (fun path -> (path, every)) checkpoint)
      rng device ~op ()
  in
  Printf.printf "tuned %s for %s in %.1fs (%d samples, %d epochs)\n"
    (match op with `Gemm -> "GEMM" | `Conv -> "CONV")
    device.Gpu.Device.name
    (Unix.gettimeofday () -. t0)
    samples epochs;
  Tuner.Profile.save (Isaac.profile engine) out;
  Printf.printf "profile written to %s\n" out

let cmd =
  let device =
    Arg.(value & opt device_conv Gpu.Device.p100 & info [ "device"; "d" ] ~doc:"Target device: 980ti or p100.")
  in
  let op = Arg.(value & opt op_conv `Gemm & info [ "op" ] ~doc:"Operation: gemm or conv.") in
  let samples =
    Arg.(value & opt int 8000 & info [ "samples"; "n" ] ~doc:"Benchmark samples for training data.")
  in
  let epochs = Arg.(value & opt int 30 & info [ "epochs" ] ~doc:"Training epochs.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  let domains =
    Arg.(value & opt int (Util.Parallel.recommended_domains ())
         & info [ "j"; "domains" ] ~doc:"Parallel domains for benchmarking.")
  in
  let out =
    Arg.(value & opt string "isaac.profile" & info [ "o"; "output" ] ~doc:"Output profile path.")
  in
  let checkpoint =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"PATH"
             ~doc:"Checkpoint dataset generation to $(docv).chunk* so a \
                   killed run can be resumed with $(b,--resume).")
  in
  let every =
    Arg.(value & opt int 200
         & info [ "checkpoint-every" ] ~docv:"N"
             ~doc:"Persist each generation chunk every $(docv) accepted samples.")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Resume from existing checkpoint chunks (same seed, \
                   --domains and --checkpoint path as the killed run); \
                   without this flag stale chunks are discarded.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log progress.") in
  Cmd.v
    (Cmd.info "isaac_tune" ~doc:"Auto-tune an input-aware kernel performance model")
    Term.(const run $ device $ op $ samples $ epochs $ seed $ domains $ out
          $ checkpoint $ every $ resume $ verbose)

let () = exit (Cmd.eval cmd)
