(* isaac_serve: resident plan-serving daemon — ROADMAP item 1.

   Clients speak one JSON object per line (see Serve and DESIGN.md
   "Plan serving"). Two transports:

     # stdin JSONL (default) — one client, e.g. scripted cold/warm probes:
     printf '%s\n' '{"op":"gemm","m":2560,"n":16,"k":2560,"id":1}' \
       | isaac_serve -p p100-gemm.profile

     # Unix socket — many concurrent clients, [--workers] accept domains:
     isaac_serve -p p100-gemm.profile --socket /tmp/isaac.sock --workers 4

   Set ISAAC_TELEMETRY=path[,interval] to export serve.* metrics. *)

open Cmdliner

let serve_stdin srv =
  let rec loop () =
    match input_line stdin with
    | exception End_of_file -> ()
    | line ->
      let line = String.trim line in
      if line = "" then loop ()
      else begin
        let response, verdict = Serve.handle srv line in
        print_string response;
        print_newline ();
        flush stdout;
        match verdict with `Stop -> () | `Continue -> loop ()
      end
  in
  loop ()

(* One accepted connection: serve request lines until EOF or shutdown.
   A shutdown request flips [stop] and shuts the listener down
   (shutdown(2), not close(2) — closing an fd does not wake siblings
   already blocked in accept, shutdown makes their accept fail). *)
let serve_connection srv ~stop ~listener fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let rec loop () =
       match input_line ic with
       | exception End_of_file -> ()
       | line ->
         let line = String.trim line in
         if line = "" then loop ()
         else begin
           let response, verdict = Serve.handle srv line in
           output_string oc response;
           output_char oc '\n';
           flush oc;
           match verdict with
           | `Continue -> loop ()
           | `Stop ->
             Atomic.set stop true;
             (try Unix.shutdown listener Unix.SHUTDOWN_RECEIVE
              with Unix.Unix_error _ -> ())
         end
     in
     loop ()
   with Sys_error _ | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let worker_loop srv ~stop ~listener =
  let rec loop () =
    if not (Atomic.get stop) then
      match Unix.accept listener with
      | fd, _ ->
        serve_connection srv ~stop ~listener fd;
        loop ()
      | exception Unix.Unix_error _ -> ()  (* listener closed: shutting down *)
  in
  loop ()

let serve_socket srv path workers =
  if Sys.file_exists path then Unix.unlink path;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX path);
  Unix.listen listener 64;
  let stop = Atomic.make false in
  Printf.eprintf "isaac_serve: listening on %s (%d worker%s, device %s)\n%!"
    path workers
    (if workers = 1 then "" else "s")
    (Serve.device srv).name;
  let domains =
    List.init (max 0 (workers - 1)) (fun _ ->
        Domain.spawn (fun () -> worker_loop srv ~stop ~listener))
  in
  worker_loop srv ~stop ~listener;
  List.iter Domain.join domains;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  if Sys.file_exists path then try Unix.unlink path with Sys_error _ -> ()

let run gemm_profile conv_profile socket workers cache_entries cache_bytes
    reload_interval =
  (* A client vanishing mid-response must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  match
    Serve.create ?cache_entries ?cache_bytes ~reload_interval
      ?gemm_profile ?conv_profile ()
  with
  | Error msg ->
    prerr_endline ("isaac_serve: " ^ msg);
    exit 2
  | Ok srv -> (
    match socket with
    | Some path -> serve_socket srv path (max 1 workers)
    | None -> serve_stdin srv)

let cmd =
  let gemm_profile =
    Arg.(value & opt (some string) None
         & info [ "p"; "profile" ] ~doc:"GEMM profile path.")
  in
  let conv_profile =
    Arg.(value & opt (some string) None
         & info [ "conv-profile" ] ~doc:"CONV profile path.")
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ]
             ~doc:"Serve a Unix domain socket at $(docv) instead of \
                   stdin/stdout JSONL." ~docv:"PATH")
  in
  let workers =
    Arg.(value & opt int 4
         & info [ "workers" ]
             ~doc:"Accept-loop domains in --socket mode (plan lookups are \
                   lock-free; concurrent misses on one input coalesce onto \
                   a single planning run).")
  in
  let cache_entries =
    Arg.(value & opt (some int) None
         & info [ "cache-entries" ]
             ~doc:"Max resident plans per op cache (LRU eviction beyond; \
                   unbounded by default).")
  in
  let cache_bytes =
    Arg.(value & opt (some int) None
         & info [ "cache-bytes" ]
             ~doc:"Max estimated plan-cache bytes per op cache.")
  in
  let reload_interval =
    Arg.(value & opt float 2.0
         & info [ "reload-interval" ]
             ~doc:"Seconds between profile hot-reload fingerprint checks \
                   (the $(b,reload) request forces one immediately).")
  in
  Cmd.v
    (Cmd.info "isaac_serve"
       ~doc:"Resident plan-serving daemon over a sharded coalescing cache")
    Term.(const run $ gemm_profile $ conv_profile $ socket $ workers
          $ cache_entries $ cache_bytes $ reload_interval)

let () = exit (Cmd.eval cmd)
